"""Result records shared by the experiment harness and the benchmarks.

A figure in the paper maps to a :class:`FigureResult` holding one
:class:`Series` per plotted line; a table maps to a ``FigureResult`` whose
``extra`` dict carries the table cells.  These records render to aligned
ASCII (what the benches print) and to CSV (for offline plotting).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SeriesPoint:
    """One x position of one line: mean +/- std over trials."""

    x: float
    mean: float
    std: float = 0.0

    def __post_init__(self):
        if self.std < 0:
            raise ValueError("std must be >= 0")


@dataclass(frozen=True)
class Series:
    """One plotted line."""

    label: str
    points: tuple[SeriesPoint, ...]

    @staticmethod
    def from_xy(label: str, xs, means, stds=None) -> "Series":
        """Build a series from parallel x/mean (and optional std) sequences."""
        stds = stds if stds is not None else [0.0] * len(xs)
        if not (len(xs) == len(means) == len(stds)):
            raise ValueError("xs, means, stds must have equal length")
        return Series(label, tuple(SeriesPoint(x, m, s) for x, m, s in zip(xs, means, stds)))

    @property
    def xs(self) -> tuple[float, ...]:
        """The x coordinates, in plotting order."""
        return tuple(p.x for p in self.points)

    @property
    def means(self) -> tuple[float, ...]:
        """The mean y values, in plotting order."""
        return tuple(p.mean for p in self.points)

    def at(self, x: float) -> SeriesPoint:
        """The point at exactly ``x`` (KeyError if absent)."""
        for p in self.points:
            if p.x == x:
                return p
        raise KeyError(f"series {self.label!r} has no point at x={x}")


@dataclass
class FigureResult:
    """All data needed to regenerate one paper figure or table."""

    fig_id: str
    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    def get(self, label: str) -> Series:
        """The series with this label (KeyError lists the valid ones)."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"{self.fig_id}: no series labelled {label!r}; "
                       f"have {[s.label for s in self.series]}")

    @property
    def labels(self) -> list[str]:
        """Series labels in plotting order."""
        return [s.label for s in self.series]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_ascii(self, value_format: str = "{:>12.3g}") -> str:
        """Aligned table: one row per x, one column per series."""
        lines = [f"== {self.fig_id}: {self.title} ==",
                 f"   ({self.ylabel} vs {self.xlabel})"]
        if self.series:
            xs = sorted({p.x for s in self.series for p in s.points})
            header = f"{self.xlabel[:18]:>18} |" + "".join(
                f"{s.label[:24]:>26}" for s in self.series)
            lines.append(header)
            lines.append("-" * len(header))
            for x in xs:
                row = f"{x:>18g} |"
                for s in self.series:
                    try:
                        p = s.at(x)
                        row += value_format.format(p.mean).rjust(26)
                    except KeyError:
                        row += " " * 26
                lines.append(row)
        for key, value in self.extra.items():
            lines.append(f"{key}: {value}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Long-form CSV: fig,series,x,mean,std."""
        rows = ["fig,series,x,mean,std"]
        for s in self.series:
            for p in s.points:
                rows.append(f"{self.fig_id},{s.label},{p.x!r},{p.mean!r},{p.std!r}")
        return "\n".join(rows) + "\n"
