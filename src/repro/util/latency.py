"""Log-bucketed latency histogram.

Message rates tell half the story; the threading designs also change the
*latency distribution* (a message stuck behind an out-of-sequence gap or
a lock convoy waits far longer than the median).  The histogram uses
logarithmic buckets (fixed memory, ~4% relative resolution) so recording
is O(1) per message and percentile queries are exact to bucket width.
"""

from __future__ import annotations

import math

_BUCKETS_PER_DECADE = 58  # ~4% resolution: 10**(1/58) ~ 1.0405


class LatencyHistogram:
    """Histogram over nanosecond latencies with log-spaced buckets."""

    __slots__ = ("_counts", "count", "total_ns", "min_ns", "max_ns")

    def __init__(self):
        self._counts: dict[int, int] = {}
        self.count = 0
        self.total_ns = 0
        self.min_ns: int | None = None
        self.max_ns: int | None = None

    @staticmethod
    def _bucket(ns: int) -> int:
        if ns <= 0:
            return 0
        return 1 + int(math.log10(ns) * _BUCKETS_PER_DECADE)

    @staticmethod
    def _bucket_upper(bucket: int) -> float:
        if bucket == 0:
            return 0.0
        return 10 ** (bucket / _BUCKETS_PER_DECADE)

    def record(self, ns: int) -> None:
        """Record one latency sample (ns >= 0)."""
        if ns < 0:
            raise ValueError("latency cannot be negative")
        b = self._bucket(ns)
        self._counts[b] = self._counts.get(b, 0) + 1
        self.count += 1
        self.total_ns += ns
        if self.min_ns is None or ns < self.min_ns:
            self.min_ns = ns
        if self.max_ns is None or ns > self.max_ns:
            self.max_ns = ns

    @property
    def mean_ns(self) -> float:
        """Mean recorded latency (0.0 when empty)."""
        return self.total_ns / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """p in [0, 100]; returns the bucket upper bound covering p."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = p / 100.0 * self.count
        seen = 0
        for bucket in sorted(self._counts):
            seen += self._counts[bucket]
            if seen >= target:
                return min(self._bucket_upper(bucket), float(self.max_ns))
        return float(self.max_ns)  # pragma: no cover - seen >= target always hits

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram into this one."""
        for bucket, n in other._counts.items():
            self._counts[bucket] = self._counts.get(bucket, 0) + n
        self.count += other.count
        self.total_ns += other.total_ns
        if other.min_ns is not None:
            self.min_ns = other.min_ns if self.min_ns is None \
                else min(self.min_ns, other.min_ns)
        if other.max_ns is not None:
            self.max_ns = other.max_ns if self.max_ns is None \
                else max(self.max_ns, other.max_ns)

    def summary(self) -> dict:
        """Count, mean, p50/p99, and min/max as a plain dict."""
        return {
            "count": self.count,
            "mean_ns": self.mean_ns,
            "p50_ns": self.percentile(50),
            "p99_ns": self.percentile(99),
            "min_ns": self.min_ns or 0,
            "max_ns": self.max_ns or 0,
        }
