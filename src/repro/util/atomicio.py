"""Atomic file primitives behind the live-telemetry surfaces.

A heartbeat file that external monitors poll (``status.json``,
``metrics.prom``) must never be observable half-written: a reader that
races the writer should see either the previous complete document or
the new one, nothing in between.  POSIX gives exactly that guarantee
for ``rename(2)`` within one filesystem, so :func:`atomic_write_text`
writes to a sibling temporary file and ``os.replace``-s it into place.

:func:`tail_lines` is the companion read primitive for append-only
JSONL files (the run-event log, the sweep journal): it returns the last
``n`` complete lines without loading an unbounded file, tolerating a
torn final line the same way the journal loader does.
"""

from __future__ import annotations

import os
import pathlib

#: how many bytes per requested line :func:`tail_lines` reads at most
_TAIL_BYTES_PER_LINE = 4096


def atomic_write_text(path, text: str) -> pathlib.Path:
    """Write ``text`` to ``path`` so readers never see a torn file.

    The text lands in ``<path>.tmp.<pid>`` first and is renamed over
    the destination, so a concurrent reader observes either the old
    complete content or the new one.  Parent directories are created
    on demand; the temporary file is removed if the rename fails.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f"{path.name}.tmp.{os.getpid()}"
    tmp.write_text(text)
    try:
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - same-directory rename rarely fails
        try:
            tmp.unlink()
        finally:
            raise
    return path


def tail_lines(path, n: int) -> list[str]:
    """The last ``n`` complete lines of a text file (oldest first).

    Reads only a bounded window from the end of the file, so tailing a
    long-running sweep's journal stays cheap.  A final line without a
    trailing newline (the signature of a crash mid-append) is still
    returned -- callers that parse it decide whether it is torn.
    Missing files yield an empty list.
    """
    if n <= 0:
        return []
    path = pathlib.Path(path)
    try:
        size = path.stat().st_size
    except OSError:
        return []
    window = min(size, n * _TAIL_BYTES_PER_LINE)
    with open(path, "rb") as handle:
        handle.seek(size - window)
        blob = handle.read(window)
    text = blob.decode("utf-8", errors="replace")
    lines = text.splitlines()
    # the first line of a mid-file window is almost surely partial
    if window < size and lines:
        lines = lines[1:]
    return lines[-n:]
