"""Deterministic probes: the seeded measurements behind every baseline.

One probe per benchmark family.  A probe runs a small, seeded slice of
the family's workload -- the same "unit of work" the pytest benches
time -- and returns a flat ``{metric: value}`` dict of *deterministic*
quantities: virtual-time totals, message counts, SPC aggregates and
sha256 prefixes of rendered artifacts.  Nothing host-dependent goes in
here; wall-clock numbers belong to the ``host`` section the benches
record.

Both surfaces call the same probe, which is the registry's core
guarantee: ``benchmarks/test_bench_X.py`` writes
``results/BENCH_X.json`` from ``run_probe("X")``, and ``python -m
repro perf check`` recomputes ``run_probe("X")`` on the current tree
and diffs it against the committed file.  A delta therefore always
means behaviour drift in the simulation, never runner noise.
"""

from __future__ import annotations

import hashlib
import tempfile


def _sha(text: str) -> str:
    """Short, stable content fingerprint for rendered artifacts."""
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _multirate_metrics(prefix: str, result) -> dict:
    """The deterministic core of one multirate run."""
    spc = result.spc
    return {
        f"{prefix}elapsed_ns": result.elapsed_ns,
        f"{prefix}messages": result.messages,
        f"{prefix}message_rate": round(result.message_rate, 3),
        f"{prefix}out_of_sequence": spc.out_of_sequence,
        f"{prefix}unexpected": spc.unexpected_messages,
        f"{prefix}match_time_ns": spc.match_time_ns,
        f"{prefix}events": result.events_processed,
    }


def probe_fig3() -> dict:
    """Figure 3's three panels at the bench unit-of-work size."""
    from repro.core import ThreadingConfig
    from repro.experiments.figure3 import PANELS
    from repro.workloads import MultirateConfig, run_multirate

    out: dict = {}
    for panel in ("a", "b", "c"):
        progress, comm_per_pair, _ = PANELS[panel]
        result = run_multirate(
            MultirateConfig(pairs=8, window=64, windows=2,
                            comm_per_pair=comm_per_pair),
            threading=ThreadingConfig(num_instances=20,
                                      assignment="dedicated",
                                      progress=progress))
        out.update(_multirate_metrics(f"{panel}.", result))
    return out


def probe_fig4() -> dict:
    """Figure 4: the same panels with ordering relaxed."""
    from repro.core import ThreadingConfig
    from repro.experiments.figure3 import PANELS
    from repro.workloads import MultirateConfig, run_multirate

    out: dict = {}
    for panel in ("a", "b", "c"):
        progress, comm_per_pair, _ = PANELS[panel]
        result = run_multirate(
            MultirateConfig(pairs=8, window=64, windows=2,
                            comm_per_pair=comm_per_pair,
                            allow_overtaking=True, any_tag=True),
            threading=ThreadingConfig(num_instances=20,
                                      assignment="dedicated",
                                      progress=progress))
        out.update(_multirate_metrics(f"{panel}.", result))
    return out


def probe_fig5() -> dict:
    """Figure 5: one run per implementation profile."""
    from repro.baselines import profile_by_name
    from repro.workloads import MultirateConfig, run_multirate

    out: dict = {}
    for key, name in (("process", "OMPI Process"),
                      ("thread", "OMPI Thread"),
                      ("star", "OMPI Thread + CRIs*")):
        profile = profile_by_name(name)
        result = run_multirate(
            MultirateConfig(pairs=8, window=64, windows=2,
                            entity_mode=profile.entity_mode,
                            comm_per_pair=profile.comm_per_pair),
            threading=profile.config, costs=profile.costs())
        out[f"{key}.elapsed_ns"] = result.elapsed_ns
        out[f"{key}.message_rate"] = round(result.message_rate, 3)
    return out


def _rmamt_metrics(testbed, threads: int, ops: int) -> dict:
    from repro.core import ThreadingConfig
    from repro.workloads import RmaMtConfig, run_rmamt

    result = run_rmamt(
        RmaMtConfig(threads=threads, ops_per_thread=ops, msg_bytes=128),
        threading=ThreadingConfig(num_instances=testbed.default_instances,
                                  assignment="dedicated"),
        costs=testbed.costs, fabric=testbed.fabric)
    return {
        "elapsed_ns": result.elapsed_ns,
        "message_rate": round(result.message_rate, 3),
        "events": result.events_processed,
        "peak_rate": round(result.peak_rate, 3),
    }


def probe_fig6() -> dict:
    """Figure 6: RMA-MT put+flush on the Haswell/Aries preset."""
    from repro.experiments import TRINITITE_HASWELL

    return _rmamt_metrics(TRINITITE_HASWELL, threads=16, ops=150)


def probe_fig7() -> dict:
    """Figure 7: RMA-MT put+flush on the KNL/Aries preset."""
    from repro.experiments import TRINITITE_KNL

    return _rmamt_metrics(TRINITITE_KNL, threads=32, ops=100)


def probe_table1() -> dict:
    """Table I: the rendered testbed table's fingerprint.

    Table I is static configuration (the testbed rows live in the
    figure's ``extra`` map, not its series), so the fingerprint covers
    the sorted rows themselves.
    """
    from repro.experiments import run_table1

    fig = run_table1()
    rows = "\n".join(f"{k}={v}" for k, v in sorted(fig.extra.items()))
    return {"cells": len(fig.extra), "rows_sha": _sha(rows)}


def probe_table2() -> dict:
    """Table II: SPC counters of the serial 20-pair cell."""
    from repro.core import ThreadingConfig
    from repro.workloads import MultirateConfig, run_multirate

    result = run_multirate(
        MultirateConfig(pairs=20, window=64, windows=2),
        threading=ThreadingConfig(num_instances=20, assignment="dedicated",
                                  progress="serial"))
    out = _multirate_metrics("", result)
    out["oos_fraction"] = round(result.spc.out_of_sequence_fraction, 6)
    return out


def probe_ablations() -> dict:
    """The five mechanism ablations, one on/off pair each."""
    from repro.core import CostModel, ThreadingConfig
    from repro.netsim.ib import IB_EDR
    from repro.workloads import MultirateConfig, run_multirate

    pairs = 12
    cfg = MultirateConfig(pairs=pairs, window=64, windows=2)
    single = ThreadingConfig(num_instances=1, assignment="dedicated",
                             progress="serial")
    many = ThreadingConfig(num_instances=pairs, assignment="dedicated",
                           progress="serial")
    conc = ThreadingConfig(num_instances=pairs, assignment="dedicated",
                           progress="concurrent")

    unfair = run_multirate(cfg, threading=single, lock_fairness="unfair")
    fair = run_multirate(cfg, threading=single, lock_fairness="fair")
    migration = run_multirate(cfg, threading=conc, costs=CostModel()
                              .with_overrides(match_migration_ns=1800))
    no_migration = run_multirate(cfg, threading=conc, costs=CostModel()
                                 .with_overrides(match_migration_ns=0))
    convoy = run_multirate(cfg, threading=single, costs=CostModel()
                           .with_overrides(lock_contended_per_waiter_ns=320))
    no_convoy = run_multirate(cfg, threading=single, costs=CostModel()
                              .with_overrides(lock_contended_per_waiter_ns=0))
    jitter = run_multirate(cfg, threading=many,
                           fabric=IB_EDR.with_overrides(wire_jitter_ns=400))
    no_jitter = run_multirate(cfg, threading=many,
                              fabric=IB_EDR.with_overrides(wire_jitter_ns=0))
    gap_cfg = cfg.with_overrides(comm_per_pair=True)
    gap = run_multirate(gap_cfg, threading=conc,
                        costs=CostModel().with_overrides(host_gap_ns=340))
    no_gap = run_multirate(gap_cfg, threading=conc,
                           costs=CostModel().with_overrides(host_gap_ns=0))
    return {
        "fairness.oos_unfair": unfair.spc.out_of_sequence,
        "fairness.oos_fair": fair.spc.out_of_sequence,
        "migration.match_ns_on": migration.spc.match_time_ns,
        "migration.match_ns_off": no_migration.spc.match_time_ns,
        "convoy.elapsed_ns_on": convoy.elapsed_ns,
        "convoy.elapsed_ns_off": no_convoy.elapsed_ns,
        "jitter.oos_on": jitter.spc.out_of_sequence,
        "jitter.oos_off": no_jitter.spc.out_of_sequence,
        "hostgap.elapsed_ns_on": gap.elapsed_ns,
        "hostgap.elapsed_ns_off": no_gap.elapsed_ns,
    }


def probe_extensions() -> dict:
    """The ext-modes exhibit (the engine bench's exhibit) fingerprint."""
    from repro.experiments.extensions import run_entity_modes

    fig = run_entity_modes(quick=True)
    return {"series": len(fig.series), "csv_sha": _sha(fig.to_csv())}


def probe_engine() -> dict:
    """Engine contract: parallel/warm-cache runs reproduce serial bytes."""
    from repro.engine import Engine, TrialCache, use_engine
    from repro.experiments.extensions import run_entity_modes

    with tempfile.TemporaryDirectory() as tmp:
        cold = Engine(jobs=1, cache=TrialCache(f"{tmp}/cache"))
        with use_engine(cold):
            cold_csv = run_entity_modes(quick=True).to_csv()
        warm = Engine(jobs=1, cache=TrialCache(f"{tmp}/cache"))
        with use_engine(warm):
            warm_csv = run_entity_modes(quick=True).to_csv()
    return {
        "trials": cold.counters.trials,
        "cold_misses": cold.counters.cache_misses,
        "warm_hits": warm.counters.cache_hits,
        "warm_misses": warm.counters.cache_misses,
        "csv_sha": _sha(cold_csv),
        "warm_csv_identical": int(warm_csv == cold_csv),
    }


def probe_simcore() -> dict:
    """Simulation-core invariants behind the host microbenches."""
    from repro.mpi.matchqueue import MatchQueue
    from repro.simthread import Delay, Scheduler, SimLock
    from repro.workloads import MultirateConfig, run_multirate

    sched = Scheduler(seed=1)

    def worker():
        for _ in range(500):
            yield Delay(100)

    for _ in range(20):
        sched.spawn(worker())
    sched.run()

    lock_sched = Scheduler(seed=2)
    lock = SimLock(lock_sched)

    def locker():
        for _ in range(200):
            yield from lock.acquire()
            yield Delay(50)
            yield from lock.release()

    for _ in range(8):
        lock_sched.spawn(locker())
    lock_elapsed = lock_sched.run()

    q = MatchQueue(entry_wildcards=True)
    for i in range(2000):
        q.insert(i % 4, i % 16, i)
    matched = sum(1 for i in range(2000) if q.match(i % 4, i % 16) is not None)

    e2e = run_multirate(MultirateConfig(pairs=4, window=32, windows=2))
    return {
        "sched_events": sched.events_processed,
        "lock_acquisitions": lock.acquisitions,
        "lock_elapsed_ns": lock_elapsed,
        "matchqueue_matched": matched,
        "e2e_elapsed_ns": e2e.elapsed_ns,
        "e2e_messages": e2e.messages,
    }


def probe_obs() -> dict:
    """Trace + analysis fingerprints of the seeded fig3a and chaos runs."""
    from repro.obs.analyze import analyze_tracer
    from repro.obs.export import to_chrome_json
    from repro.obs.scenarios import traced_run

    out: dict = {}
    for exp in ("fig3a", "chaos"):
        run = traced_run(exp)
        analysis = analyze_tracer(run.tracer, name=exp)
        out[f"{exp}.spans"] = len(run.tracer.spans)
        out[f"{exp}.elapsed_ns"] = run.elapsed_ns
        out[f"{exp}.trace_sha"] = _sha(to_chrome_json(run.tracer))
        out[f"{exp}.messages_sha"] = _sha(analysis.messages_csv())
        out[f"{exp}.critical_sha"] = _sha(analysis.critical_csv())
        out[f"{exp}.blame_sha"] = _sha(analysis.blame_csv())
    return out


#: bench-family name -> probe; one entry per ``benchmarks/test_bench_*``
PROBES = {
    "ablations": probe_ablations,
    "engine": probe_engine,
    "extensions": probe_extensions,
    "fig3": probe_fig3,
    "fig4": probe_fig4,
    "fig5": probe_fig5,
    "fig6": probe_fig6,
    "fig7": probe_fig7,
    "obs": probe_obs,
    "simcore": probe_simcore,
    "table1": probe_table1,
    "table2": probe_table2,
}


def run_probe(name: str) -> dict:
    """Run one registered probe and return its deterministic metrics."""
    try:
        probe = PROBES[name]
    except KeyError:
        raise KeyError(f"no probe named {name!r}; known: "
                       f"{', '.join(sorted(PROBES))}") from None
    return probe()
