"""The perf gate: diff fresh probe runs against committed baselines.

``check_benches`` recomputes every registered probe and compares the
result, metric by metric, with the ``deterministic`` section of the
matching ``results/BENCH_<name>.json``.  Integers and strings must
match exactly; floats get a small relative tolerance (they are derived
from exact integers, so only rounding in the derivation itself is
forgiven).  ``host`` sections are never compared -- wall-clock numbers
are weather, not behaviour.

The output is a :class:`CheckReport`: per-metric deltas with old/new
values, plus structural findings (missing baselines, stale metrics
that no probe produces anymore, empty deterministic sections).  The
CLI renders it via :func:`render_report` and exits non-zero on any
failure, which is exactly what the CI ``perf-gate`` job gates on.

``update_benches`` is the other half of the workflow: rewrite the
``deterministic`` sections in place (preserving ``host``) so an
*intentional* behaviour change becomes a reviewable baseline diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.baseline import bench_path, list_benches, load_bench, write_bench
from repro.perf.probes import PROBES, run_probe

#: default relative tolerance for float metrics
REL_TOL = 1e-9


@dataclass
class Delta:
    """One metric that differs between baseline and fresh run."""

    bench: str
    metric: str
    old: object       #: committed value (None when newly appeared)
    new: object       #: freshly probed value (None when vanished)

    def describe(self) -> str:
        """One human-readable line for the delta report."""
        if self.old is None:
            return f"{self.bench}.{self.metric}: new metric = {self.new!r}"
        if self.new is None:
            return f"{self.bench}.{self.metric}: baseline metric vanished " \
                   f"(was {self.old!r})"
        line = f"{self.bench}.{self.metric}: {self.old!r} -> {self.new!r}"
        if isinstance(self.old, (int, float)) \
                and isinstance(self.new, (int, float)) and self.old:
            line += f" ({(self.new - self.old) / abs(self.old):+.3%})"
        return line


@dataclass
class BenchCheck:
    """Comparison outcome for one bench family."""

    name: str
    status: str                 #: "ok" | "drift" | "missing" | "empty"
    metrics: int = 0            #: metrics compared
    deltas: list[Delta] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when this family passes the gate."""
        return self.status == "ok"


@dataclass
class CheckReport:
    """The full gate outcome across all bench families."""

    checks: list[BenchCheck] = field(default_factory=list)
    unknown_files: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every family passes and no stray baselines exist."""
        return all(c.ok for c in self.checks) and not self.unknown_files

    @property
    def deltas(self) -> list[Delta]:
        """All metric deltas across families."""
        return [d for c in self.checks for d in c.deltas]

    @property
    def missing(self) -> list[str]:
        """Families whose committed baseline file does not exist.

        Distinct from :attr:`unknown_files` (stray ``BENCH_*.json``
        with no matching probe): a missing baseline means ``perf
        update`` was never run for a registered probe; a stray file
        means a baseline outlived its probe.  The summary reports the
        two separately.
        """
        return [c.name for c in self.checks if c.status == "missing"]


def values_match(old, new, rel_tol: float = REL_TOL) -> bool:
    """Whether one committed value matches one freshly probed value.

    Exact for ints, strings and bools; floats (either side) compare
    with relative tolerance ``rel_tol``.
    """
    if isinstance(old, bool) or isinstance(new, bool):
        return old is new
    if isinstance(old, float) or isinstance(new, float):
        if not isinstance(old, (int, float)) \
                or not isinstance(new, (int, float)):
            return False
        if old == new:
            return True
        scale = max(abs(old), abs(new))
        return abs(old - new) <= rel_tol * scale
    return old == new


def compare(name: str, baseline: dict, fresh: dict,
            rel_tol: float = REL_TOL) -> BenchCheck:
    """Compare one family's committed metrics against a fresh probe run."""
    deltas = []
    for metric in sorted(set(baseline) | set(fresh)):
        old, new = baseline.get(metric), fresh.get(metric)
        if metric not in baseline or metric not in fresh \
                or not values_match(old, new, rel_tol):
            deltas.append(Delta(name, metric, old, new))
    status = "drift" if deltas else "ok"
    return BenchCheck(name=name, status=status,
                      metrics=len(set(baseline) | set(fresh)), deltas=deltas)


def check_benches(results_dir, names: list[str] | None = None,
                  rel_tol: float = REL_TOL) -> CheckReport:
    """Run every probe (or ``names``) and gate against ``results_dir``."""
    selected = sorted(names) if names else sorted(PROBES)
    report = CheckReport()
    for name in selected:
        path = bench_path(results_dir, name)
        if not path.exists():
            report.checks.append(BenchCheck(name=name, status="missing"))
            continue
        baseline = load_bench(path)["deterministic"]
        if not baseline:
            report.checks.append(BenchCheck(name=name, status="empty"))
            continue
        report.checks.append(compare(name, baseline, run_probe(name),
                                     rel_tol=rel_tol))
    if names is None:
        known = {f"BENCH_{n}.json" for n in PROBES}
        report.unknown_files = [p.name for p in list_benches(results_dir)
                                if p.name not in known]
    return report


def update_benches(results_dir, names: list[str] | None = None) -> list[str]:
    """Re-probe and rewrite the deterministic sections; returns names.

    Host sections are left untouched -- only the benches themselves
    record wall-clock data.
    """
    selected = sorted(names) if names else sorted(PROBES)
    for name in selected:
        write_bench(results_dir, name, run_probe(name))
    return selected


def render_report(report: CheckReport, verbose: bool = False) -> str:
    """The delta report ``python -m repro perf check`` prints."""
    lines = []
    width = max((len(c.name) for c in report.checks), default=4)
    for c in report.checks:
        if c.status == "ok":
            note = f"{c.metrics} deterministic metrics match"
        elif c.status == "drift":
            note = f"{len(c.deltas)} of {c.metrics} metrics drifted"
        elif c.status == "empty":
            note = "baseline has an empty deterministic section " \
                   "(run: python -m repro perf update)"
        else:
            note = "no committed baseline " \
                   "(run: python -m repro perf update)"
        mark = "ok  " if c.ok else "FAIL"
        lines.append(f"{mark} {c.name:<{width}}  {note}")
    for c in report.checks:
        for d in c.deltas:
            lines.append(f"     {d.describe()}")
    for stray in report.unknown_files:
        lines.append(f"FAIL {stray}: stray baseline file "
                     "(no matching probe; delete it or register a probe)")
    passed = sum(1 for c in report.checks if c.ok)
    summary = f"perf gate: {passed}/{len(report.checks)} families pass"
    if report.missing:
        summary += (f", {len(report.missing)} baseline(s) missing "
                    f"({', '.join(report.missing)})")
    if report.unknown_files:
        summary += (f", {len(report.unknown_files)} stray file(s) "
                    f"({', '.join(report.unknown_files)})")
    lines.append(summary + ("" if report.ok else " -- FAILED"))
    if verbose and report.ok:
        lines.append("(deterministic sections only; host wall-clock data "
                     "is informational)")
    return "\n".join(lines)


def report_json(report: CheckReport) -> dict:
    """Machine-readable form of a :class:`CheckReport`.

    One format for every consumer -- ``repro perf check --json``, the
    CI gate and the dashboard -- instead of each scraping the text
    report.  Missing baselines and stray files are separate fields.
    """
    return {
        "schema": 1,
        "ok": report.ok,
        "passed": sum(1 for c in report.checks if c.ok),
        "total": len(report.checks),
        "missing": list(report.missing),
        "stray_files": list(report.unknown_files),
        "families": [
            {
                "name": c.name,
                "status": c.status,
                "ok": c.ok,
                "metrics": c.metrics,
                "deltas": [
                    {"metric": d.metric, "old": d.old, "new": d.new}
                    for d in c.deltas
                ],
            }
            for c in report.checks
        ],
    }
