"""``BENCH_<name>.json``: schema and IO for the baseline registry.

Schema version 2 splits every baseline into two sections:

* ``deterministic`` -- metrics that are a pure function of the seed
  (virtual-time totals, message counts, SPC aggregates, artifact
  hashes).  These are byte-stable across machines and Python versions,
  so CI diffs them exactly; a change means the simulation's *behaviour*
  changed, not the weather on the runner.
* ``host`` -- wall-clock timings, utilization, interpreter version.
  Informational only: recorded so trends are visible in review, never
  gated on.

Files are written with sorted keys and a trailing newline so
regeneration is byte-stable too.  Version-1 files (the PR-3
``BENCH_engine.json``, a bare wall-clock trajectory) are migrated on
load: their entries become ``host.trajectory``.
"""

from __future__ import annotations

import json
import pathlib

#: bump when the document layout changes
SCHEMA_VERSION = 2


def bench_path(results_dir, name: str) -> pathlib.Path:
    """The canonical path of one baseline file."""
    return pathlib.Path(results_dir) / f"BENCH_{name}.json"


def empty_doc(name: str) -> dict:
    """A fresh schema-2 document."""
    return {"schema": SCHEMA_VERSION, "name": name,
            "deterministic": {}, "host": {}}


def load_bench(path) -> dict:
    """Read one baseline; absent/corrupt files yield a fresh document.

    Version-1 documents (a ``trajectory`` list of wall-clock entries)
    are migrated in memory: the trajectory moves under ``host``.
    """
    path = pathlib.Path(path)
    name = path.stem.removeprefix("BENCH_")
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        return empty_doc(name)
    if doc.get("schema") == 1 and isinstance(doc.get("trajectory"), list):
        migrated = empty_doc(name)
        migrated["host"]["trajectory"] = doc["trajectory"]
        return migrated
    if doc.get("schema") != SCHEMA_VERSION \
            or not isinstance(doc.get("deterministic"), dict) \
            or not isinstance(doc.get("host"), dict):
        return empty_doc(name)
    doc.setdefault("name", name)
    return doc


def dump_bench(doc: dict) -> str:
    """Serialize one document (stable key order, trailing newline)."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write_bench(results_dir, name: str, deterministic: dict,
                host: dict | None = None) -> pathlib.Path:
    """Write one baseline, replacing the deterministic section.

    ``host=None`` preserves whatever host section the file already has
    (``perf update`` refreshes baselines without inventing wall-clock
    numbers); passing a dict merges it over the existing one.
    """
    path = bench_path(results_dir, name)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = load_bench(path)
    doc["name"] = name
    doc["deterministic"] = dict(deterministic)
    if host is not None:
        doc["host"] = {**doc.get("host", {}), **host}
    path.write_text(dump_bench(doc))
    return path


def list_benches(results_dir) -> list[pathlib.Path]:
    """All committed baseline files, sorted by name."""
    return sorted(pathlib.Path(results_dir).glob("BENCH_*.json"))
