"""Performance-regression observatory: seeded baselines, gated in CI.

The virtual-time simulator makes a kind of perf testing possible that
wall-clock benches never deliver: every metric that matters -- elapsed
virtual time, message counts, SPC aggregates, artifact hashes -- is a
*pure function of the seed*.  This package turns that into a registry:

* :mod:`.probes` -- one deterministic probe per benchmark family,
  shared verbatim by the pytest benches and the gate;
* :mod:`.baseline` -- the ``results/BENCH_<name>.json`` schema
  (version 2: a gated ``deterministic`` section plus an informational
  ``host`` section for wall-clock trends);
* :mod:`.check` -- ``python -m repro perf check|update``: diff fresh
  probe runs against the committed baselines with per-metric
  tolerances and a readable delta report.

A drifted metric is a *behaviour change by construction* -- there is no
runner noise to argue about -- so CI can gate on it exactly.
"""

from repro.perf.baseline import (SCHEMA_VERSION, bench_path, dump_bench,
                                 empty_doc, list_benches, load_bench,
                                 write_bench)
from repro.perf.check import (BenchCheck, CheckReport, Delta, check_benches,
                              compare, render_report, report_json,
                              update_benches, values_match)
from repro.perf.probes import PROBES, run_probe

__all__ = [
    "BenchCheck",
    "CheckReport",
    "Delta",
    "PROBES",
    "SCHEMA_VERSION",
    "bench_path",
    "check_benches",
    "compare",
    "dump_bench",
    "empty_doc",
    "list_benches",
    "load_bench",
    "render_report",
    "report_json",
    "run_probe",
    "update_benches",
    "values_match",
    "write_bench",
]
