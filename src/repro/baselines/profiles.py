"""Implementation profiles: the Figure 5 state-of-the-art comparison.

The paper compares Open MPI 4.0.0 (with and without its modifications),
Intel MPI 2018.1 and MPICH 3.3, each in process mode and thread mode.  We
cannot run those binaries; instead each is a *profile*: the structural
design it uses (instance count, assignment, progress, matching scope) plus
mild cost-model adjustments reflecting that implementations differ a
little in per-message software overhead.  The paper's own observation is
that structure dominates: "there is little difference between MPI
implementations [in thread mode] -- they all perform similarly poorly",
while every implementation's process mode scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import CostModel, ThreadingConfig


@dataclass(frozen=True)
class ImplementationProfile:
    """One line of the Figure 5 comparison."""

    name: str
    entity_mode: str                       #: "threads" or "processes"
    config: ThreadingConfig = field(default_factory=ThreadingConfig)
    comm_per_pair: bool = False
    #: multiplicative tweak on all software costs (vendor tuning delta)
    cost_scale: float = 1.0

    def costs(self, base: CostModel | None = None) -> CostModel:
        """The cost model for this implementation (scaled if tuned)."""
        base = base or CostModel()
        return base if self.cost_scale == 1.0 else base.scaled(self.cost_scale)


_BASE = ThreadingConfig(num_instances=1, assignment="dedicated", progress="serial")
_CRIS = ThreadingConfig(num_instances=20, assignment="dedicated", progress="serial")
_CRIS_STAR = ThreadingConfig(num_instances=20, assignment="dedicated", progress="concurrent")

#: Figure 5's eight lines.  "OMPI Thread + CRIs*" is the paper's most
#: optimistic configuration: CRIs + concurrent progress + concurrent
#: matching (communicator per pair).
FIGURE5_PROFILES: tuple[ImplementationProfile, ...] = (
    ImplementationProfile("OMPI Process", "processes", _BASE),
    ImplementationProfile("OMPI Thread", "threads", _BASE),
    ImplementationProfile("OMPI Thread + CRIs", "threads", _CRIS),
    ImplementationProfile("OMPI Thread + CRIs*", "threads", _CRIS_STAR, comm_per_pair=True),
    ImplementationProfile("IMPI Process", "processes", _BASE, cost_scale=0.92),
    ImplementationProfile("IMPI Thread", "threads", _BASE, cost_scale=0.92),
    ImplementationProfile("MPICH Process", "processes", _BASE, cost_scale=1.08),
    ImplementationProfile("MPICH Thread", "threads", _BASE, cost_scale=1.08),
)


def profile_by_name(name: str) -> ImplementationProfile:
    """Look up a Figure 5 profile by its display name."""
    for p in FIGURE5_PROFILES:
        if p.name == name:
            return p
    raise KeyError(f"unknown profile {name!r}; have {[p.name for p in FIGURE5_PROFILES]}")
