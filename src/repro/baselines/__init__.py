"""Baseline MPI-implementation profiles for the state-of-the-art study."""

from repro.baselines.profiles import (
    FIGURE5_PROFILES,
    ImplementationProfile,
    profile_by_name,
)

__all__ = ["FIGURE5_PROFILES", "ImplementationProfile", "profile_by_name"]
