"""Command-line interface: regenerate paper exhibits from a shell.

Examples::

    python -m repro list
    python -m repro testbeds
    python -m repro run fig3a
    python -m repro run fig6 --full --out results/
    python -m repro run all --out results/
"""

from __future__ import annotations

import argparse
import pathlib
import sys


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Give MPI Threading a Fair Chance' (CLUSTER'19) exhibits")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("testbeds", help="print the simulated testbed presets (Table I)")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run.add_argument("--full", action="store_true",
                     help="paper-density parameters (slow)")
    run.add_argument("--out", type=pathlib.Path, default=None,
                     help="also save ASCII + CSV under this directory")
    return parser


def _save(fig, out_dir: pathlib.Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / f"{fig.fig_id}.txt").write_text(fig.to_ascii() + "\n")
    (out_dir / f"{fig.fig_id}.csv").write_text(fig.to_csv())


def _emit(result, out_dir) -> None:
    figures = result if isinstance(result, (list, tuple)) else [result]
    for fig in figures:
        print(fig.to_ascii())
        print()
        if out_dir is not None:
            _save(fig, out_dir)


def main(argv=None) -> int:
    from repro.experiments import EXPERIMENTS, TESTBEDS, run_experiment

    args = _build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for exp_id, exp in EXPERIMENTS.items():
            print(f"{exp_id:<{width}}  {exp.description}")
        return 0

    if args.command == "testbeds":
        for name, tb in TESTBEDS.items():
            print(f"== {name} ==")
            for key, value in tb.as_row().items():
                print(f"  {key:<14} {value}")
        return 0

    # run
    quick = not args.full
    if args.experiment == "all":
        for exp_id in EXPERIMENTS:
            print(f"--- running {exp_id} ---")
            _emit(run_experiment(exp_id, quick=quick), args.out)
        return 0
    try:
        result = run_experiment(args.experiment, quick=quick)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    _emit(result, args.out)
    return 0
