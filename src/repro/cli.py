"""Command-line interface: regenerate paper exhibits from a shell.

Examples::

    python -m repro list
    python -m repro testbeds
    python -m repro run fig3a
    python -m repro run fig6 --full --out results/
    python -m repro run all --jobs 8 --out results/
    python -m repro run fig3b --metrics-interval 100000 --out results/
    python -m repro run chaos --drop-rate 0.02
    python -m repro run fig5 --jobs 4 --no-cache
    python -m repro run fig3a --jobs 4 --resume
    python -m repro run fig6 --shard 1/4 --out results/
    python -m repro run fig3a --jobs 4 --flaky-workers 0.2 --trial-timeout 30
    python -m repro top results/          # watch a run from another terminal
    python -m repro top results/ --once --json
    python -m repro trace fig3a --out trace.json
    python -m repro trace chaos --out chaos.json
    python -m repro analyze fig3a
    python -m repro analyze trace.json --out results/analysis
    python -m repro perf check
    python -m repro perf update --only fig6 --only fig7
    python -m repro serve --root served/ --port 8321
    python -m repro submit fig3a --url http://127.0.0.1:8321 --follow

``run`` executes its seeded trials through the experiment engine
(:mod:`repro.engine`): ``--jobs N`` fans independent trials out over N
supervised worker processes and the content-addressed trial cache
(under ``<out-or-results>/.cache``) skips every trial whose
configuration, seed and code fingerprint were computed before.  Both
are safe by construction -- trials are pure, so parallel and
warm-cache runs emit byte-identical artifacts -- and ``--no-cache``
forces recomputation.

The run is **crash-safe**: every planned trial and outcome is appended
to a durable sweep journal under ``<cache-root>/journal/``, so after a
crash (or Ctrl-C, or ``kill -9``) ``--resume`` replays completed
trials and executes only the missing ones, with byte-identical merged
artifacts.  ``--shard k/N`` computes only every N-th trial (for CI
fan-out; artifacts are suppressed, a later ``--resume`` run merges the
union).  Worker failures are supervised: ``--trial-timeout`` bounds
each trial's wall clock, dead or wedged workers are respawned and
their trials retried with exponential backoff up to ``--retries``
times, and ``--flaky-workers R`` chaos-tests exactly that machinery by
killing/hanging a seeded fraction of first attempts.

Every ``run --out`` is also **observable while it runs**: a telemetry
directory (``<out>/telemetry``, or ``--telemetry DIR``) receives an
append-only structured event log (``events.jsonl``), an atomically
rewritten heartbeat (``status.json``) with progress/ETA/worker state, a
Prometheus textfile (``metrics.prom``), and -- on retry exhaustion, a
crash, or SIGTERM -- a ``postmortem/`` flight-recorder bundle.  ``top``
renders that heartbeat as a live terminal dashboard from any other
terminal (``--once`` for one frame, ``--json`` for scripting);
``--no-telemetry`` turns the whole layer off.

``trace`` records one representative simulation of the experiment with
the virtual-time tracer attached and writes Chrome trace-event JSON --
open it at https://ui.perfetto.dev (or ``chrome://tracing``) to see one
track per simulated thread plus one per lock/CRI/queue.  Traces are
byte-identical across runs with the same seed.

``analyze`` is the offline counterpart (:mod:`repro.obs.analyze`): it
takes either a traceable experiment id (re-running its seeded
representative simulation) or an exported ``trace.json`` (no re-run at
all) and reconstructs per-message latency decomposition, the critical
path and lock blame tables; ``--out`` writes the deterministic CSVs +
text report.

``serve`` runs the long-lived experiment service (:mod:`repro.serve`):
a stdlib-only HTTP front end over the same engine where N identical
requests are content-addressed down to one simulation, running jobs
stream their telemetry over Server-Sent Events, and finished jobs
serve the byte-exact ``repro run`` artifacts with immutable ETags.
``submit`` is the matching client: POST one exhibit, optionally
``--follow`` the event stream, and ``--save DIR`` the artifacts.

``perf`` is the regression gate (:mod:`repro.perf`): ``check`` re-runs
every deterministic probe and diffs it against the committed
``results/BENCH_*.json`` baselines, ``update`` rewrites the baselines
(preserving host wall-clock sections), ``list`` shows what is
committed.  CI runs ``python -m repro perf check``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys


def _interval(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"interval must be a positive number of nanoseconds, got {value}")
    return value


def _drop_rate(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"drop rate must be in [0, 1], got {value}")
    return value


def _jobs(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"jobs must be a positive worker count, got {value}")
    return value


def _shard(text: str) -> tuple[int, int]:
    try:
        k_text, n_text = text.split("/", 1)
        k, n = int(k_text), int(n_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like k/N (e.g. 2/4), got {text!r}") from None
    if n < 1 or not 1 <= k <= n:
        raise argparse.ArgumentTypeError(
            f"shard k/N needs 1 <= k <= N, got {text!r}")
    return k, n


def _retries(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"retries must be >= 0, got {value}")
    return value


def _timeout(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"trial timeout must be positive seconds, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Give MPI Threading a Fair Chance' (CLUSTER'19) exhibits")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("testbeds", help="print the simulated testbed presets (Table I)")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run.add_argument("--full", action="store_true",
                     help="paper-density parameters (slow)")
    run.add_argument("--out", type=pathlib.Path, default=None,
                     help="also save ASCII + CSV under this directory")
    run.add_argument("--metrics-interval", type=_interval, default=None, metavar="NS",
                     help="also sample the SPC time-series every NS of virtual "
                          "time on a representative run of the experiment; "
                          "writes <exp>.metrics.csv under --out (or prints a "
                          "summary)")
    run.add_argument("--drop-rate", type=_drop_rate, default=None, metavar="R",
                     help="chaos only: sweep [0, R] as the packet drop axis "
                          "instead of the built-in axis (fraction in [0, 1])")
    run.add_argument("--jobs", type=_jobs, default=1, metavar="N",
                     help="run seeded trials on N worker processes "
                          "(byte-identical to serial; default 1)")
    run.add_argument("--no-cache", action="store_true",
                     help="bypass the content-addressed trial cache and "
                          "recompute every trial (also disables the sweep "
                          "journal, so --resume/--shard need caching on)")
    run.add_argument("--resume", action="store_true",
                     help="resume an interrupted run: replay trials the "
                          "sweep journal recorded as completed, execute "
                          "only the missing ones")
    run.add_argument("--shard", type=_shard, default=None, metavar="K/N",
                     help="compute only every N-th planned trial (shard K "
                          "of N); artifacts are suppressed -- run with "
                          "--resume afterwards to merge the shards' union")
    run.add_argument("--no-journal", action="store_true",
                     help="skip the durable sweep journal (disables "
                          "--resume for this run)")
    run.add_argument("--retries", type=_retries, default=2, metavar="N",
                     help="max supervised re-executions per trial after a "
                          "worker death, timeout, or trial error "
                          "(default 2; exponential backoff between tries)")
    run.add_argument("--trial-timeout", type=_timeout, default=None,
                     metavar="S",
                     help="per-trial wall-clock limit in seconds; an "
                          "overdue worker is killed and its trial retried "
                          "(default: unlimited)")
    run.add_argument("--flaky-workers", type=_drop_rate, default=None,
                     metavar="R",
                     help="chaos-test the engine: seeded fraction R of "
                          "first attempts lose their worker (half killed, "
                          "half hung past the timeout); requires "
                          "--jobs >= 2, output stays byte-identical")
    run.add_argument("--flaky-seed", type=int, default=1, metavar="S",
                     help="seed for --flaky-workers decisions (default 1)")
    run.add_argument("--telemetry", type=pathlib.Path, default=None,
                     metavar="DIR",
                     help="write live telemetry (events.jsonl, status.json, "
                          "metrics.prom, postmortem bundles) under DIR "
                          "(default: <out>/telemetry when --out is given)")
    run.add_argument("--no-telemetry", action="store_true",
                     help="disable live telemetry even when --out is given")

    top = sub.add_parser(
        "top", help="live terminal monitor for a running sweep")
    top.add_argument("run_dir", type=pathlib.Path,
                     help="the run's telemetry directory, or the --out "
                          "directory containing one")
    top.add_argument("--once", action="store_true",
                     help="print a single frame and exit (CI-friendly)")
    top.add_argument("--json", action="store_true",
                     help="print the raw status.json document instead of "
                          "rendering a frame")
    top.add_argument("--interval", type=_timeout, default=1.0, metavar="S",
                     help="refresh interval in seconds (default 1.0)")

    trace = sub.add_parser(
        "trace", help="trace one representative run (Perfetto/Chrome JSON)")
    trace.add_argument("experiment", help="a traceable experiment id")
    trace.add_argument("--out", type=pathlib.Path,
                       default=pathlib.Path("trace.json"),
                       help="output path for the trace JSON (default trace.json)")
    trace.add_argument("--seed", type=int, default=1,
                       help="simulation seed (same seed => byte-identical trace)")
    trace.add_argument("--metrics-interval", type=_interval, default=None, metavar="NS",
                       help="also emit the SPC time-series sampled every NS of "
                            "virtual time to <out>.metrics.csv")
    trace.add_argument("--top", type=int, default=12,
                       help="rows in the printed top-N report")

    analyze = sub.add_parser(
        "analyze", help="latency blame from a trace (offline; no re-run "
                        "when given a trace.json)")
    analyze.add_argument("source",
                         help="a traceable experiment id, or the path of an "
                              "exported trace.json")
    analyze.add_argument("--out", type=pathlib.Path, default=None,
                         help="write <name>.{messages,critical,blame,locks}"
                              ".csv and <name>.report.txt here")
    analyze.add_argument("--seed", type=int, default=1,
                         help="seed when re-running an experiment id "
                              "(ignored for trace files)")
    analyze.add_argument("--top", type=int, default=10,
                         help="rows per table in the printed report")

    profile = sub.add_parser(
        "profile", help="host-time profile of one experiment's "
                        "representative run (sys.setprofile)")
    profile.add_argument("experiment", help="a traceable experiment id")
    profile.add_argument("--seed", type=int, default=1,
                        help="simulation seed (call/event counts are "
                             "byte-identical per seed)")
    profile.add_argument("--phases", type=int, default=8, metavar="N",
                        help="virtual-time phases to attribute host time "
                             "to (default 8)")
    profile.add_argument("--micro", action="store_true",
                        help="scaled-down scenario shape (fast; used by "
                             "the CI profile smoke)")
    profile.add_argument("--top", type=int, default=12,
                        help="rows per table in the printed report")
    profile.add_argument("--out", type=pathlib.Path, default=None,
                        help="write <exp>.{profile,counters,folded}.txt + "
                             "<exp>.flame.svg + manifest.json here")
    profile.add_argument("--folded", action="store_true",
                        help="print the collapsed-stack (folded) output "
                             "instead of the report")
    profile.add_argument("--svg", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="also write the flamegraph SVG to PATH")

    serve = sub.add_parser(
        "serve", help="run the HTTP experiment service (dedup + SSE)")
    serve.add_argument("--root", type=pathlib.Path,
                       default=pathlib.Path("served"),
                       help="service state directory: jobs/, .cache/ "
                            "(default served/)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8321,
                       help="port to bind; 0 picks an ephemeral port "
                            "(default 8321)")
    serve.add_argument("--jobs", type=_jobs, default=1,
                       help="worker processes per job's engine (default 1)")
    serve.add_argument("--workers", type=_jobs, default=2,
                       help="concurrent jobs (service worker threads, "
                            "default 2)")
    serve.add_argument("--queue-limit", type=_jobs, default=32,
                       help="bounded admission queue size; a full queue "
                            "answers 503 (default 32)")
    serve.add_argument("--retries", type=_retries, default=2,
                       help="supervised retries per trial (default 2)")
    serve.add_argument("--trial-timeout", type=_timeout, default=None,
                       metavar="S",
                       help="per-trial wall-clock limit in seconds")
    serve.add_argument("--flaky-workers", type=_drop_rate, default=None,
                       metavar="R",
                       help="chaos-test served runs: seeded fraction R of "
                            "first attempts lose their worker; requires "
                            "--jobs >= 2, artifacts stay byte-identical")
    serve.add_argument("--flaky-seed", type=int, default=1, metavar="S",
                       help="seed for --flaky-workers decisions (default 1)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")

    submit = sub.add_parser(
        "submit", help="submit one experiment to a running service")
    submit.add_argument("experiment", help="experiment id from 'list'")
    submit.add_argument("--url", default="http://127.0.0.1:8321",
                        help="service base URL "
                             "(default http://127.0.0.1:8321)")
    submit.add_argument("--full", action="store_true",
                        help="paper-density parameters (slow)")
    submit.add_argument("--follow", action="store_true",
                        help="stream the job's telemetry events (SSE) "
                             "until it finishes")
    submit.add_argument("--save", type=pathlib.Path, default=None,
                        metavar="DIR",
                        help="wait for the job and download its artifacts "
                             "into DIR")
    submit.add_argument("--timeout", type=_timeout, default=600.0,
                        metavar="S",
                        help="how long to wait for the job (default 600)")

    perf = sub.add_parser(
        "perf", help="deterministic performance baselines (the CI gate)")
    perf.add_argument("action", choices=("check", "update", "list", "report"),
                      help="check: diff fresh probe runs against committed "
                           "baselines; update: rewrite the deterministic "
                           "sections; list: show committed baselines; "
                           "report: build the HTML trajectory dashboard")
    perf.add_argument("--results", type=pathlib.Path,
                      default=pathlib.Path("results"),
                      help="baseline directory (default results/)")
    perf.add_argument("--only", action="append", default=None, metavar="NAME",
                      help="restrict to one bench family (repeatable)")
    perf.add_argument("--json", action="store_true",
                      help="check: print the machine-readable report "
                           "(the format CI and the dashboard consume)")
    perf.add_argument("--out", type=pathlib.Path, default=None,
                      help="report: output HTML path "
                           "(default results/perf_report.html)")
    perf.add_argument("--no-check", action="store_true",
                      help="report: skip re-running the probes; render "
                           "trajectories only")
    return parser


def _emit(result, out_dir) -> None:
    from repro.experiments.artifacts import figures_of, save_figure

    for fig in figures_of(result):
        print(fig.to_ascii())
        print()
        if out_dir is not None:
            save_figure(fig, out_dir)


def _emit_metrics(exp_id: str, interval_ns: int, out_dir) -> None:
    """Time-series CSV for one experiment's representative run."""
    from repro.obs.scenarios import traced_run

    try:
        run = traced_run(exp_id, metrics_interval_ns=interval_ns, trace=False)
    except KeyError:
        print(f"({exp_id}: no representative scenario; metrics skipped)")
        return
    csv = run.metrics.to_csv()
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"{exp_id}.metrics.csv"
        path.write_text(csv)
        print(f"metrics time-series: {path} ({len(run.metrics.rows)} samples)")
    else:
        print(f"metrics time-series ({len(run.metrics.rows)} samples, "
              f"every {interval_ns} ns):")
        lines = csv.splitlines()
        for line in lines[:2] + (["..."] if len(lines) > 3 else []) + lines[-1:]:
            print(f"  {line}")
    print(f"queue depths: {run.metrics.depth_summary()}")


def _cmd_trace(args) -> int:
    from repro.obs.export import save_trace, top_report
    from repro.obs.scenarios import traced_run

    try:
        run = traced_run(args.experiment, seed=args.seed,
                         metrics_interval_ns=args.metrics_interval)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    path = save_trace(run.tracer, args.out)
    print(f"trace: {path} ({len(run.tracer.spans)} spans, "
          f"{run.elapsed_ns} ns virtual) -- open in https://ui.perfetto.dev")
    if run.metrics is not None:
        mpath = path.with_suffix(".metrics.csv")
        mpath.write_text(run.metrics.to_csv())
        print(f"metrics time-series: {mpath} ({len(run.metrics.rows)} samples)")
    print()
    print(top_report(run.tracer, n=args.top))
    return 0


def _cmd_analyze(args) -> int:
    from repro.obs.analyze import analyze_file, analyze_tracer

    source = pathlib.Path(args.source)
    if source.suffix == ".json" or source.exists():
        if not source.exists():
            print(f"no such trace file: {source}", file=sys.stderr)
            return 2
        analysis = analyze_file(source)
    else:
        from repro.obs.scenarios import traced_run

        try:
            run = traced_run(args.source, seed=args.seed)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        analysis = analyze_tracer(run.tracer, name=args.source)
    print(analysis.report(top=args.top))
    if args.out is not None:
        print()
        for path in analysis.save(args.out):
            print(f"wrote {path}")
    return 0


def _cmd_perf(args) -> int:
    import json

    from repro.perf import (PROBES, check_benches, list_benches, load_bench,
                            render_report, report_json, update_benches)

    names = args.only
    if names:
        unknown = sorted(set(names) - set(PROBES))
        if unknown:
            print(f"unknown bench families: {', '.join(unknown)} "
                  f"(known: {', '.join(sorted(PROBES))})", file=sys.stderr)
            return 2
    if args.action == "list":
        for path in list_benches(args.results):
            doc = load_bench(path)
            print(f"{doc['name']:<12} {len(doc['deterministic']):>3} "
                  f"deterministic metrics, "
                  f"{len(doc['host'])} host entries  ({path})")
        return 0
    if args.action == "update":
        for name in update_benches(args.results, names=names):
            print(f"updated {name}")
        return 0
    if args.action == "report":
        from repro.obs.dashboard import save_dashboard

        report = None
        if not args.no_check:
            report = check_benches(args.results, names=names)
        out = args.out if args.out is not None \
            else args.results / "perf_report.html"
        path = save_dashboard(args.results, out, report=report)
        print(f"dashboard: {path}")
        if report is not None:
            print(render_report(report))
            return 0 if report.ok else 1
        return 0
    report = check_benches(args.results, names=names)
    if args.json:
        print(json.dumps(report_json(report), indent=2, sort_keys=True))
    else:
        print(render_report(report))
    return 0 if report.ok else 1


def _cmd_profile(args) -> int:
    from repro.obs.profile import (folded_text, profile_report, profile_run,
                                   save_profile)

    try:
        result = profile_run(args.experiment, seed=args.seed,
                             phases=args.phases, micro=args.micro)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.folded:
        sys.stdout.write(folded_text(result))
    else:
        print(profile_report(result, top=args.top))
    if args.svg is not None:
        from repro.util.svg import render_flamegraph

        args.svg.parent.mkdir(parents=True, exist_ok=True)
        args.svg.write_text(render_flamegraph(
            result.folded,
            title=f"{args.experiment} host-time flamegraph "
                  f"(seed {args.seed})"))
        print(f"flamegraph: {args.svg}")
    if args.out is not None:
        from repro.engine.manifest import build_manifest, write_manifest

        for path in save_profile(result, args.out, top=max(args.top, 20)):
            print(f"wrote {path}")
        manifest = build_manifest(
            command=["repro", "profile", args.experiment],
            experiments=[args.experiment],
            params={"phases": args.phases, "micro": args.micro,
                    "top": args.top},
            seed=args.seed,
            wall_s=result.host_wall_ns / 1e9)
        print(f"wrote {write_manifest(args.out, manifest)}")
    return 0


def _cmd_serve(args) -> int:
    """Run the experiment service until interrupted."""
    from repro.serve import ExperimentServer

    if args.flaky_workers is not None and args.jobs < 2:
        print("--flaky-workers injects faults into the supervised worker "
              "pool: use --jobs >= 2", file=sys.stderr)
        return 2
    server = ExperimentServer(
        args.root, host=args.host, port=args.port,
        quiet=not args.verbose,
        engine_jobs=args.jobs, workers=args.workers,
        queue_limit=args.queue_limit, retries=args.retries,
        trial_timeout=args.trial_timeout,
        flaky_workers=args.flaky_workers, flaky_seed=args.flaky_seed)
    print(f"serving on {server.url}  (root: {args.root}; Ctrl-C to stop)")
    server.serve_forever()
    return 0


def _cmd_submit(args) -> int:
    """Submit one experiment to a running service; optionally follow."""
    import json

    from repro.serve import ServeClient

    client = ServeClient(args.url)
    response = client.submit(args.experiment,
                             params={"quick": not args.full})
    if response.status not in (200, 201):
        print(f"submit failed ({response.status}): "
              f"{response.json().get('error', response.body.decode())}",
              file=sys.stderr)
        return 2
    doc = response.json()
    job_id = doc["id"]
    print(f"job {job_id}: {doc['state']}"
          f"{' (deduplicated)' if doc['deduped'] else ''}")
    if args.follow:
        for event, _seq, data in client.events(job_id,
                                               timeout_s=args.timeout):
            if event == "end":
                print(f"-- end: {data['state']}")
            else:
                print(json.dumps(data, sort_keys=True))
    if args.save is not None or not args.follow:
        final = client.wait(job_id, timeout_s=args.timeout)
        print(f"job {job_id}: {final['state']}")
        if final["state"] != "done":
            print(f"error: {final.get('error')}", file=sys.stderr)
            return 3
    if args.save is not None:
        args.save.mkdir(parents=True, exist_ok=True)
        listing = client.artifact(job_id)
        for name in listing.json()["artifacts"]:
            blob = client.artifact(job_id, name)
            (args.save / name).write_bytes(blob.body)
            print(f"saved {args.save / name}")
    return 0


def _run_params(args) -> dict:
    """The sweep-identity params shared by journal and telemetry ids."""
    params = {"quick": not args.full}
    if args.drop_rate is not None:
        params["drop_rate"] = args.drop_rate
    return params


def _build_telemetry(args, experiments):
    """The live-telemetry session for one ``run``, or None.

    Telemetry is on whenever the run writes artifacts (``--out``) or is
    pointed somewhere explicitly (``--telemetry DIR``), and off
    otherwise or under ``--no-telemetry``.  The run id reuses the sweep
    journal's id (experiments + params + code fingerprint), so event
    contents are deterministic per sweep and an ``events.jsonl`` can be
    matched to the journal that ran beside it.
    """
    if args.no_telemetry:
        return None
    base = args.telemetry
    if base is None:
        if args.out is None:
            return None
        base = args.out / "telemetry"
    from repro.engine.journal import journal_id
    from repro.obs.live import LiveTelemetry

    params = _run_params(args)
    return LiveTelemetry(base, journal_id(experiments, params),
                         experiments=experiments, params=params,
                         jobs=args.jobs)


def _build_engine(args, experiments, telemetry=None):
    """The engine a ``run`` invocation executes its trials through.

    The cache root is ``$REPRO_TRIAL_CACHE`` when set, else ``.cache``
    under ``--out`` (or ``results/``).  Unless ``--no-cache`` or
    ``--no-journal`` disables it, a durable sweep journal under
    ``<cache-root>/journal/`` makes the run crash-safe: ``--resume``
    (and every ``--shard`` run, which is partial by design) reopens it
    and replays completed trials.  ``telemetry`` (a
    :class:`~repro.obs.live.session.LiveTelemetry` or None) is injected
    into the engine so every resolution decision emits a run event.
    """
    from repro.engine import Engine, RetryPolicy, SweepJournal, TrialCache

    cache = journal = faults = None
    if not args.no_cache:
        root = os.environ.get("REPRO_TRIAL_CACHE")
        if root:
            cache_root = pathlib.Path(root)
        else:
            base = args.out if args.out is not None else pathlib.Path("results")
            cache_root = base / ".cache"
        cache = TrialCache(cache_root)
        if not args.no_journal:
            journal = SweepJournal.open(
                cache_root / "journal", experiments, params=_run_params(args),
                resume=args.resume or args.shard is not None)
    timeout = args.trial_timeout
    if args.flaky_workers is not None:
        from repro.faults.workers import WorkerFaultPlan

        if timeout is None:
            timeout = 30.0  # injected hangs must surface as timeouts
        faults = WorkerFaultPlan(seed=args.flaky_seed,
                                 kill_rate=args.flaky_workers / 2,
                                 hang_rate=args.flaky_workers / 2,
                                 hang_s=timeout * 3)
    policy = RetryPolicy(max_retries=args.retries, timeout_s=timeout)
    return Engine(jobs=args.jobs, cache=cache, journal=journal,
                  policy=policy, faults=faults, shard=args.shard,
                  telemetry=telemetry)


def _emit_engine(engine, out_dir) -> None:
    """Print the engine summary; persist its counters next to --out."""
    from repro.obs.enginestats import engine_csv, engine_summary

    if engine.counters.batches == 0:
        return
    print(engine_summary(engine))
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / "engine.metrics.csv").write_text(engine_csv(engine))


def _write_run_manifest(args, engine, experiments, started: float,
                        telemetry=None) -> None:
    """Provenance for one ``run --out`` invocation (see engine.manifest)."""
    import time

    from repro.engine.manifest import build_manifest, write_manifest

    params = {"quick": not args.full, "jobs": args.jobs,
              "cache": not args.no_cache,
              "journal": not (args.no_cache or args.no_journal),
              "resume": args.resume, "retries": args.retries}
    if args.shard is not None:
        params["shard"] = list(args.shard)
    if args.trial_timeout is not None:
        params["trial_timeout_s"] = args.trial_timeout
    if args.flaky_workers is not None:
        params["flaky_workers"] = args.flaky_workers
        params["flaky_seed"] = args.flaky_seed
    if args.drop_rate is not None:
        params["drop_rate"] = args.drop_rate
    if args.metrics_interval is not None:
        params["metrics_interval_ns"] = args.metrics_interval
    manifest = build_manifest(
        command=["repro", "run", args.experiment],
        experiments=experiments,
        params=params,
        engine=engine,
        wall_s=time.perf_counter() - started,
        telemetry=telemetry.summary() if telemetry is not None else None)
    print(f"manifest: {write_manifest(args.out, manifest)}")


def _cmd_run(args) -> int:
    import time

    from repro.engine import TrialRetryError, use_engine
    from repro.experiments import EXPERIMENTS, run_experiment

    if args.resume and (args.no_cache or args.no_journal):
        print("--resume replays the sweep journal: drop --no-cache / "
              "--no-journal", file=sys.stderr)
        return 2
    if args.shard is not None and args.no_cache:
        print("--shard needs the trial cache so a --resume run can merge "
              "the shards: drop --no-cache", file=sys.stderr)
        return 2
    if args.flaky_workers is not None and args.jobs < 2:
        print("--flaky-workers injects faults into the supervised worker "
              "pool: use --jobs >= 2", file=sys.stderr)
        return 2

    quick = not args.full
    started = time.perf_counter()
    sharded = args.shard is not None
    experiments = list(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    telemetry = _build_telemetry(args, experiments)
    engine = _build_engine(args, experiments, telemetry)
    if telemetry is not None:
        telemetry.install_sigterm()
        telemetry.sweep_start()
    try:
        with use_engine(engine):
            try:
                if args.experiment == "all":
                    for exp_id in EXPERIMENTS:
                        print(f"--- running {exp_id} ---")
                        result = run_experiment(exp_id, quick=quick)
                        if not sharded:
                            _emit(result, args.out)
                            if args.metrics_interval is not None:
                                _emit_metrics(exp_id, args.metrics_interval,
                                              args.out)
                elif args.drop_rate is not None:
                    if args.experiment != "chaos":
                        print("--drop-rate only applies to the 'chaos' "
                              "experiment", file=sys.stderr)
                        return 2
                    from repro.experiments.chaos import run_chaos

                    result = run_chaos(
                        quick=quick,
                        drop_rates=(0.0, args.drop_rate / 2, args.drop_rate))
                else:
                    result = run_experiment(args.experiment, quick=quick)
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                if telemetry is not None:
                    telemetry.sweep_finish(False)
                return 2
            except TrialRetryError as exc:
                print(f"run failed: {exc}", file=sys.stderr)
                print("completed trials are journaled; fix the fault and "
                      "rerun with --resume", file=sys.stderr)
                if telemetry is not None:
                    bundle = telemetry.postmortem("retry-exhaustion", exc)
                    telemetry.sweep_finish(False)
                    print(f"postmortem: {bundle}", file=sys.stderr)
                return 3
            except Exception as exc:
                if telemetry is not None:
                    telemetry.postmortem("crash", exc)
                    telemetry.sweep_finish(False)
                raise
            if args.experiment != "all" and not sharded:
                _emit(result, args.out)
                if args.metrics_interval is not None:
                    _emit_metrics(args.experiment, args.metrics_interval,
                                  args.out)
            if sharded:
                k, n = args.shard
                print(f"shard {k}/{n}: artifacts suppressed (journal + cache "
                      f"updated; merge with a --resume run)")
            _emit_engine(engine, args.out)
            if telemetry is not None:
                telemetry.sweep_finish(True)
                print(f"telemetry: {telemetry.dir}")
            if args.out is not None:
                _write_run_manifest(args, engine, experiments, started,
                                    telemetry)
    finally:
        if telemetry is not None:
            telemetry.restore_sigterm()
            telemetry.close()
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.experiments import EXPERIMENTS, TESTBEDS

    args = _build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for exp_id, exp in EXPERIMENTS.items():
            print(f"{exp_id:<{width}}  {exp.description}")
        return 0

    if args.command == "testbeds":
        for name, tb in TESTBEDS.items():
            print(f"== {name} ==")
            for key, value in tb.as_row().items():
                print(f"  {key:<14} {value}")
        return 0

    if args.command == "top":
        from repro.obs.live.top import run_top

        return run_top(args.run_dir, once=args.once, as_json=args.json,
                       interval_s=args.interval)

    if args.command == "trace":
        return _cmd_trace(args)

    if args.command == "analyze":
        return _cmd_analyze(args)

    if args.command == "perf":
        return _cmd_perf(args)

    if args.command == "profile":
        return _cmd_profile(args)

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "submit":
        return _cmd_submit(args)

    return _cmd_run(args)
