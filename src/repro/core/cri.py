"""Communication Resource Instance: a protected bundle of network state.

Paper section III-B: "We use the concept of a Communication Resources
Instance (CRI) to encompass resources such as network contexts, network
endpoints, and CQs with per-instance level of protection to perform
communication operations."

Here a CRI wraps one :class:`~repro.netsim.context.NetworkContext` (which
carries its completion queue and endpoint cache) and one
:class:`~repro.simthread.sync.SimLock`.  Moving protection from the single
shared endpoint/context down to per-instance locks is what enables
concurrent sends.
"""

from __future__ import annotations

from repro.simthread.sync import SimLock


class CRI:
    """One Communication Resource Instance."""

    __slots__ = ("index", "context", "lock", "sends", "progress_calls", "dead")

    def __init__(self, sched, index: int, context, lock_costs, fairness: str = "unfair"):
        self.index = index
        self.context = context
        self.lock = SimLock(sched, lock_costs, name=f"cri-{index}", fairness=fairness)
        self.sends = 0
        self.progress_calls = 0
        #: permanently failed (its context died); excluded from assignment
        self.dead = False

    @property
    def cq(self):
        """The completion queue of this CRI's network context."""
        return self.context.cq

    def endpoint_to(self, dst_context):
        """The wire endpoint from this CRI's context to ``dst_context``."""
        return self.context.endpoint_to(dst_context)

    def __repr__(self):  # pragma: no cover - debug aid
        return f"<CRI #{self.index} ctx={self.context.index} cq={len(self.cq)}>"
