"""The CRI pool and Algorithm 1's thread-to-instance assignment.

The pool is the paper's "centralized body to assign the allocated
instances to threads".  Two strategies:

* **round-robin** (``GET-INSTANCE-ID--ROUND-ROBIN``): an atomic counter
  hands out instances first-come first-served per call.  No lock
  contention on the counter itself (a cheap atomic), good load balancing,
  but a thread's consecutive operations land on different instances --
  which costs an instance-switch penalty and spreads one sequence stream
  over many connections.
* **dedicated** (``GET-INSTANCE-ID--DEDICATED``): first touch assigns via
  round-robin and caches the instance in thread-local storage; every later
  call is a TLS hit.  With threads <= instances this eliminates instance
  lock contention entirely; with more threads than instances (hardware
  context limits), threads share instances and contention reappears --
  the pool supports both, as the paper requires.
"""

from __future__ import annotations

from repro.core.config import DEDICATED, ROUND_ROBIN, CostModel, ThreadingConfig
from repro.core.cri import CRI
from repro.simthread.atomics import AtomicCounter
from repro.simthread.scheduler import Delay
from repro.simthread.tls import ThreadLocal


class CRIPool:
    """Allocates CRIs on one process's NIC and assigns them to threads."""

    def __init__(self, sched, nic, config: ThreadingConfig, costs: CostModel,
                 lock_fairness: str = "unfair"):
        self.sched = sched
        self.config = config
        self.costs = costs
        self.instances: list[CRI] = []
        for i in range(config.num_instances):
            ctx = nic.create_context()
            self.instances.append(CRI(sched, i, ctx, costs.cri_lock_costs(), lock_fairness))
        self._rr = AtomicCounter(sched, cost_ns=costs.atomic_rmw_ns)
        self._tls = ThreadLocal(sched)
        self._last_used = ThreadLocal(sched)
        self.switches = 0
        #: owning process's SPC (set by the MPI layer; ``None`` standalone)
        self.spc = None
        self.failed_instances: list[CRI] = []
        #: CQ events rescued from dead instances into survivors
        self.drained_events = 0
        #: dedicated (TLS) assignments re-run because the instance died
        self.migrations = 0

    def __len__(self) -> int:
        return len(self.instances)

    # ------------------------------------------------------------------
    # graceful degradation
    # ------------------------------------------------------------------
    def fail_instance(self, index: int):
        """Permanently fail the CRI created with ``index``; returns the
        survivor that inherits its traffic (or ``None`` if already dead).

        Plain callback (no yields): marks the CRI and its context dead,
        removes it from the assignment rotation, drains its pending CQ
        events into a deterministic survivor and points the dead
        context's failover there, so in-flight deliveries and acks land
        on a context some thread still progresses.  Threads re-run
        Algorithm 1 over the survivors on their next assignment.
        """
        victim = None
        for cri in self.instances:
            if cri.index == index:
                victim = cri
                break
        if victim is None:
            return None  # unknown or already failed: nothing to do
        if len(self.instances) == 1:
            raise RuntimeError(
                f"cannot fail cri-{index}: it is the pool's last surviving instance")
        victim.dead = True
        victim.context.failed = True
        self.instances.remove(victim)
        self.failed_instances.append(victim)
        survivor = self.instances[index % len(self.instances)]
        victim.context.failover = survivor.context
        rescued = victim.cq.poll()
        for event in rescued:
            survivor.cq.push(event)
        self.drained_events += len(rescued)
        return survivor

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def get_instance_round_robin(self):
        """Generator: next instance via the shared atomic counter."""
        ticket = yield from self._rr.fetch_add()
        return self.instances[ticket % len(self.instances)]

    def get_instance_dedicated(self):
        """Generator: this thread's permanent instance (TLS-cached).

        A cached instance that has since died triggers a *migration*:
        the assignment is re-run over the survivors (and counted in the
        ``cri_migrations`` SPC).
        """
        cri = self._tls.get()
        if cri is not None and cri.dead:
            self.migrations += 1
            if self.spc is not None:
                self.spc.cri_migrations += 1
            cri = None
        if cri is None:
            cri = yield from self.get_instance_round_robin()
            self._tls.set(cri)
        return cri

    def get_instance(self, switch_ns: int | None = None):
        """Generator: assignment per the configured strategy, charging the
        instance-switch penalty when the thread changes instance.

        ``switch_ns`` overrides the penalty; one-sided callers pass the
        larger RMA value (re-arming endpoint/rkey state on a different
        context costs far more than touching a warm one, which is much of
        why round-robin trails dedicated so badly in Figures 6 and 7).
        """
        if self.config.assignment == DEDICATED:
            cri = yield from self.get_instance_dedicated()
        else:
            cri = yield from self.get_instance_round_robin()
        last = self._last_used.get()
        if last is not None and last is not cri:
            self.switches += 1
            yield Delay(self.costs.instance_switch_ns if switch_ns is None else switch_ns)
        self._last_used.set(cri)
        return cri

    def dedicated_index(self):
        """Generator: *position* of this thread's dedicated instance in
        ``instances`` (Algorithm 2 indexes the live list with it; after a
        failure, creation index and list position diverge)."""
        cri = yield from self.get_instance_dedicated()
        return self.instances.index(cri)

    def round_robin_index(self):
        """Generator: next round-robin index (Algorithm 2's fallback scan)."""
        ticket = yield from self._rr.fetch_add()
        return ticket % len(self.instances)
