"""The paper's primary contribution: Communication Resource Instances.

Three cooperating pieces, mirroring section III of the paper:

* :class:`~repro.core.cri.CRI` -- one Communication Resource Instance: a
  network context (+ its completion queue) plus a per-instance lock.
* :class:`~repro.core.pool.CRIPool` -- allocates instances and assigns
  them to threads with the *round-robin* (atomic counter) or *dedicated*
  (thread-local storage) strategy of Algorithm 1, including the
  fewer-instances-than-threads fallback required by hardware context
  limits (Cray Aries).
* :mod:`~repro.core.progress` -- the progress engines: the traditional
  *serial* engine that admits a single thread at a time, and the
  *concurrent* engine of Algorithm 2 where threads progress their
  dedicated instance first under try-locks and help other instances when
  idle, guaranteeing every instance is eventually progressed.

:class:`~repro.core.config.ThreadingConfig` bundles the knobs a run
selects (instance count, assignment strategy, progress mode), and
:class:`~repro.core.config.CostModel` holds every calibrated software cost
in virtual nanoseconds.
"""

from repro.core.config import CostModel, ThreadingConfig
from repro.core.cri import CRI
from repro.core.pool import CRIPool
from repro.core.progress import ConcurrentProgress, SerialProgress, make_progress_engine

__all__ = [
    "CRI",
    "CRIPool",
    "ConcurrentProgress",
    "CostModel",
    "SerialProgress",
    "ThreadingConfig",
    "make_progress_engine",
]
