"""Progress engines: serial (traditional) and concurrent (Algorithm 2).

The progress engine drains completion queues and dispatches events to the
upper layer (request completion, matching).  The two designs:

* :class:`SerialProgress` -- Open MPI's traditional scheme: a global
  try-lock admits a single thread; the holder sweeps every instance.
  Threads that fail the try-lock return immediately with zero completions
  (the caller backs off), funneling all extraction through one thread.
* :class:`ConcurrentProgress` -- the paper's Algorithm 2: no global lock.
  A thread first try-locks and progresses its *dedicated* instance; only
  if that produced no completion does it scan other instances via
  round-robin try-locks, stopping at the first instance that yields
  completions.  A failed try-lock means someone else is progressing that
  instance, so the thread moves on -- the try-lock-as-information idiom of
  section III-C.  The fallback scan guarantees orphaned instances (dead
  threads, threads > instances) are still progressed eventually.

Both engines poll *and dispatch* under the CRI lock -- completion
callbacks chain inline from the BTL progress loop as in btl/uct -- while
the matching engine takes its own per-communicator lock inside the
dispatch, so Figure 1's two-stage progress->match pipeline is preserved.
"""

from __future__ import annotations

from repro.core.config import CONCURRENT, SERIAL, CostModel, ThreadingConfig
from repro.core.pool import CRIPool
from repro.simthread.scheduler import Delay
from repro.simthread.sync import SimLock


class _ProgressBase:
    """Shared instance-progress helper.

    ``post_round`` is an optional generator factory run at the end of
    every progress call (outside any progress/instance lock); the MPI
    layer uses it to flush queued protocol replies (rendezvous CTS/DATA),
    which cannot be sent from inside the matching engine.
    """

    def __init__(self, sched, pool: CRIPool, costs: CostModel, dispatch,
                 post_round=None):
        self.sched = sched
        self.pool = pool
        self.costs = costs
        self.dispatch = dispatch
        self.post_round = post_round
        self.calls = 0
        self.denied = 0
        # flattened frozen costs + a reusable Delay for the (very common)
        # empty-progress round
        self._cq_poll_ns = costs.cq_poll_ns
        self._cq_event_ns = costs.cq_event_ns
        self._empty_delay = Delay(costs.progress_empty_ns)

    def _progress_instance(self, cri):
        """Generator: try to progress one CRI.

        Returns the number of completions, or ``None`` if the instance's
        try-lock was held (another thread is progressing it).

        An instance whose CQ is empty is skipped without taking its lock:
        emptiness is a single cached load of the CQ's producer index, the
        standard cheap "anything pending?" hint, so sweeping many idle
        instances costs (almost) nothing.  The sweep-level cost of an
        entirely idle pass is charged once by the engines.
        """
        if cri.cq.empty:
            return 0
        ok = yield from cri.lock.try_acquire()
        if not ok:
            return None
        cri.progress_calls += 1
        events = cri.cq.poll()
        if not events:
            yield self._empty_delay
            yield from cri.lock.release()
            return 0
        yield Delay(self._cq_poll_ns + len(events) * self._cq_event_ns)
        # Dispatch runs with the instance lock held: completion callbacks
        # (request completion, PML matching) chain inline from the BTL
        # progress loop, exactly as in btl/uct.  This keeps each CQ's
        # batch order intact even when several threads take turns
        # progressing one shared instance.
        count = 0
        for ev in events:
            count += yield from self.dispatch(ev)
        yield from cri.lock.release()
        return count


class SerialProgress(_ProgressBase):
    """Single thread in the progress engine at a time (pre-paper design)."""

    def __init__(self, sched, pool, costs, dispatch, post_round=None):
        super().__init__(sched, pool, costs, dispatch, post_round)
        self.global_lock = SimLock(sched, costs.lock_costs(), name="opal-progress")

    def progress(self):
        """Generator: one progress-engine call; returns completion count."""
        self.calls += 1
        trc = self.sched.tracer
        traced = trc.enabled
        ok = yield from self.global_lock.try_acquire()
        if not ok:
            self.denied += 1
            if traced:
                trc.instant(trc.thread_track(self.sched.current),
                            "progress.denied", "progress",
                            {"lock": self.global_lock.name})
            return 0
        if traced:
            tid = trc.thread_track(self.sched.current)
            trc.begin(tid, "progress.sweep", "progress")
        total = 0
        for cri in self.pool.instances:
            r = yield from self._progress_instance(cri)
            if r:
                total += r
        if total == 0:
            yield self._empty_delay
        yield from self.global_lock.release()
        if traced:
            trc.end(tid, {"completions": total, "mode": "serial"})
        if self.post_round is not None:
            yield from self.post_round()
        return total


class ConcurrentProgress(_ProgressBase):
    """Algorithm 2: dedicated-first, round-robin helper fallback."""

    def progress(self):
        """Generator: one progress-engine call; returns completion count."""
        self.calls += 1
        trc = self.sched.tracer
        traced = trc.enabled
        if traced:
            tid = trc.thread_track(self.sched.current)
            trc.begin(tid, "progress.sweep", "progress")
        instances = self.pool.instances
        k = yield from self.pool.dedicated_index()
        count = yield from self._progress_instance(instances[k])
        if count is None:
            self.denied += 1
            count = 0
        if count == 0:
            for _ in range(len(instances)):
                k = yield from self.pool.round_robin_index()
                r = yield from self._progress_instance(instances[k])
                if r is None:
                    self.denied += 1
                elif r:
                    count += r
                if count > 0:
                    break
        if count == 0:
            yield self._empty_delay
        if traced:
            trc.end(tid, {"completions": count, "mode": "concurrent"})
        if self.post_round is not None:
            yield from self.post_round()
        return count


def make_progress_engine(sched, pool: CRIPool, config: ThreadingConfig,
                         costs: CostModel, dispatch, post_round=None):
    """Build the progress engine selected by ``config.progress``."""
    if config.progress == SERIAL:
        return SerialProgress(sched, pool, costs, dispatch, post_round)
    if config.progress == CONCURRENT:
        return ConcurrentProgress(sched, pool, costs, dispatch, post_round)
    raise ValueError(f"unknown progress mode {config.progress!r}")
