"""Run configuration: threading-design knobs and the calibrated cost model.

Every virtual-time cost in the MPI software stack lives in
:class:`CostModel` so that testbed presets (Table I) and implementation
profiles (Figure 5 baselines) are *data*, not code.  The defaults are
calibrated so that the simulated Multirate/RMA-MT rates land in the same
regime as the paper's measurements (hundreds of thousands to a few million
messages per second for two-sided; tens of millions peak for RMA).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.simthread.sync import LockCosts

ROUND_ROBIN = "round_robin"
DEDICATED = "dedicated"
SERIAL = "serial"
CONCURRENT = "concurrent"

_ASSIGNMENTS = (ROUND_ROBIN, DEDICATED)
_PROGRESS_MODES = (SERIAL, CONCURRENT)


@dataclass(frozen=True)
class CostModel:
    """All software costs, in virtual nanoseconds.

    Grouped by the code path they model; see DESIGN.md section 5 for the
    calibration rationale.  ``host_gap_ns`` models the per-process shared
    memory/allocator/coherence bottleneck: no two messages can be fully
    processed by one process closer together than this gap, which is what
    ultimately caps a 20-thread process below 20 independent processes
    (the paper's unexplained high-thread-count saturation in Fig. 3c and
    the thread-vs-process gap in Fig. 5).
    """

    # -- synchronization ------------------------------------------------
    atomic_rmw_ns: int = 30
    lock_acquire_ns: int = 25
    lock_contended_ns: int = 180
    lock_release_ns: int = 15
    lock_tryfail_ns: int = 35
    #: futex-convoy cost: extra handoff latency per thread still queued on
    #: the mutex at grant time (scheduler wakeups, cache-line storms).
    lock_contended_per_waiter_ns: int = 320
    #: cache migration penalty charged when the *matching* structures are
    #: touched by a different thread than last time while still hot in the
    #: previous thread's cache (Table II's 3x match time under concurrent
    #: progress emerges from this).
    match_migration_ns: int = 1800
    #: how long the matching working set stays hot after a match; a touch
    #: by a different thread after this window misses cache regardless of
    #: core, so no *extra* migration penalty applies.
    match_hot_window_ns: int = 3000
    #: penalty when a thread communicates on a different CRI than its
    #: previous operation (endpoint/cache working-set switch).
    instance_switch_ns: int = 150
    # -- two-sided send path --------------------------------------------
    send_path_ns: int = 450
    recv_post_ns: int = 400
    request_complete_ns: int = 70
    wait_poll_ns: int = 50
    wait_backoff_ns: int = 1500
    # -- progress engine -------------------------------------------------
    cq_poll_ns: int = 60
    cq_event_ns: int = 150
    progress_empty_ns: int = 25
    # -- matching ---------------------------------------------------------
    match_base_ns: int = 400
    seq_validate_ns: int = 80
    match_search_per_elem_ns: int = 3
    match_deliver_ns: int = 350
    oos_insert_ns: int = 150
    oos_lookup_ns: int = 60
    unexpected_insert_ns: int = 200
    # -- rendezvous protocol ------------------------------------------------
    #: messages larger than this go RTS/CTS/DATA instead of eagerly
    eager_limit_bytes: int = 8192
    #: software handling of one RTS match or CTS (scheduling the reply)
    rndv_handshake_ns: int = 260
    #: per-byte cost of landing bulk payload in the user buffer
    copy_per_byte_ns: float = 0.03
    # -- per-process shared host bottleneck -------------------------------
    host_gap_ns: int = 340
    # -- one-sided ---------------------------------------------------------
    rma_instance_switch_ns: int = 1500
    rma_put_post_ns: int = 1600
    rma_get_post_ns: int = 1700
    rma_acc_post_ns: int = 1850
    rma_flush_ns: int = 400
    rma_flush_backoff_ns: int = 900

    def lock_costs(self, migration_ns: int = 0) -> LockCosts:
        """Plain mutex costs (match locks, windows, miscellany).

        Short memory-only critical sections hand off without the convoy
        term: the paper's SPC data shows per-message match time stays
        ~1us under serial progress even at 90% out-of-sequence, so the
        match lock must not convoy.
        """
        return LockCosts(
            acquire_ns=self.lock_acquire_ns,
            contended_ns=self.lock_contended_ns,
            release_ns=self.lock_release_ns,
            tryfail_ns=self.lock_tryfail_ns,
            migration_ns=migration_ns,
        )

    def cri_lock_costs(self) -> LockCosts:
        """Instance (network context) lock costs, including the convoy.

        The paper: "threads sharing the same instance will continuously
        fight for the same protection lock, and the lock will therefore
        always be contested" -- the TX path's doorbell/driver work makes
        contended handoffs progressively costlier as the wait queue
        deepens, which is what sinks the single-instance red lines in
        Figures 3a and 6/7.
        """
        return LockCosts(
            acquire_ns=self.lock_acquire_ns,
            contended_ns=self.lock_contended_ns,
            release_ns=self.lock_release_ns,
            tryfail_ns=self.lock_tryfail_ns,
            contended_per_waiter_ns=self.lock_contended_per_waiter_ns,
        )

    #: fields that are sizes/thresholds, not times: never scaled.
    _NON_TIME_FIELDS = frozenset({"eager_limit_bytes"})

    def scaled(self, factor: float) -> "CostModel":
        """Uniformly derate every time cost (e.g. slow KNL cores)."""
        fields = {}
        for f in dataclasses.fields(self):
            v = getattr(self, f.name)
            if isinstance(v, int) and f.name not in self._NON_TIME_FIELDS:
                fields[f.name] = int(v * factor)
            else:
                fields[f.name] = v
        return CostModel(**fields)

    def with_overrides(self, **kwargs) -> "CostModel":
        """Copy with some cost fields replaced."""
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class ThreadingConfig:
    """The three design knobs a run selects (paper section III).

    Attributes
    ----------
    num_instances:
        How many CRIs each MPI process allocates.  1 reproduces the
        original (pre-CRI) Open MPI design.
    assignment:
        ``'round_robin'`` or ``'dedicated'`` (Algorithm 1).
    progress:
        ``'serial'`` (traditional single-thread progress) or
        ``'concurrent'`` (Algorithm 2).
    """

    num_instances: int = 1
    assignment: str = DEDICATED
    progress: str = SERIAL

    def __post_init__(self):
        if self.num_instances < 1:
            raise ValueError("num_instances must be >= 1")
        if self.assignment not in _ASSIGNMENTS:
            raise ValueError(f"assignment must be one of {_ASSIGNMENTS}, got {self.assignment!r}")
        if self.progress not in _PROGRESS_MODES:
            raise ValueError(f"progress must be one of {_PROGRESS_MODES}, got {self.progress!r}")

    def with_overrides(self, **kwargs) -> "ThreadingConfig":
        """Copy with some knobs replaced."""
        return dataclasses.replace(self, **kwargs)
