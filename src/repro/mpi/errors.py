"""MPI-level error types, error codes, and error-handler constants.

Every error class carries an MPI-style integer ``code`` (the values
follow MPICH's numbering where one exists) so error handlers can switch
on codes the way real MPI applications do; :func:`error_class` maps a
code back to the exception class (the round trip MPI spells
``MPI_Error_class``).

Communicators carry an *error handler* analogue: with
:data:`ERRORS_ARE_FATAL` (the MPI default) a transport failure aborts
the run by raising from the progress engine; with :data:`ERRORS_RETURN`
the failure is recorded on the affected request/operation and surfaces
from ``wait``/``flush`` at the caller.
"""

MPI_SUCCESS = 0
MPI_ERR_TAG = 4
MPI_ERR_COMM = 5
MPI_ERR_RANK = 6
MPI_ERR_UNKNOWN = 14
MPI_ERR_TRUNCATE = 15
MPI_ERR_OTHER = 16
MPI_ERR_RMA_SYNC = 51

#: communicator error-handler analogues (MPI_Comm_set_errhandler)
ERRORS_ARE_FATAL = "errors-are-fatal"
ERRORS_RETURN = "errors-return"
ERRHANDLERS = (ERRORS_ARE_FATAL, ERRORS_RETURN)


class MpiError(Exception):
    """Base class for MPI usage/semantic errors."""

    code = MPI_ERR_UNKNOWN


class RankError(MpiError):
    """A rank argument is not a member of the communicator."""

    code = MPI_ERR_RANK


class TagError(MpiError):
    """A tag argument is outside the valid range for the call."""

    code = MPI_ERR_TAG


class CommunicatorError(MpiError):
    """Invalid communicator construction or use."""

    code = MPI_ERR_COMM


class TruncationError(MpiError):
    """A received message was longer than the posted receive buffer
    (MPI_ERR_TRUNCATE)."""

    code = MPI_ERR_TRUNCATE


class EpochError(MpiError):
    """A one-sided operation was issued outside an access epoch, or epoch
    calls were mismatched (MPI_ERR_RMA_SYNC)."""

    code = MPI_ERR_RMA_SYNC


class TransportError(MpiError):
    """A message or RMA operation exhausted its retransmission budget
    (MPI_ERR_OTHER): the reliable transport gave up and surfaced an
    error completion."""

    code = MPI_ERR_OTHER


#: code -> most specific exception class carrying it
_ERROR_CLASSES = {
    MPI_ERR_RANK: RankError,
    MPI_ERR_TAG: TagError,
    MPI_ERR_COMM: CommunicatorError,
    MPI_ERR_TRUNCATE: TruncationError,
    MPI_ERR_RMA_SYNC: EpochError,
    MPI_ERR_OTHER: TransportError,
    MPI_ERR_UNKNOWN: MpiError,
}


def error_class(code: int):
    """The exception class for an MPI error code (MPI_Error_class)."""
    try:
        return _ERROR_CLASSES[code]
    except KeyError:
        raise ValueError(f"unknown MPI error code {code}") from None
