"""MPI-level error types."""


class MpiError(Exception):
    """Base class for MPI usage/semantic errors."""


class RankError(MpiError):
    """A rank argument is not a member of the communicator."""


class TagError(MpiError):
    """A tag argument is outside the valid range for the call."""


class CommunicatorError(MpiError):
    """Invalid communicator construction or use."""


class TruncationError(MpiError):
    """A received message was longer than the posted receive buffer
    (MPI_ERR_TRUNCATE)."""


class EpochError(MpiError):
    """A one-sided operation was issued outside an access epoch, or epoch
    calls were mismatched (MPI_ERR_RMA_SYNC)."""
