"""Communicators: the matching scope of two-sided MPI.

A communicator is a *global descriptor* (id, member ranks, info); each
member process lazily builds its own per-communicator state (matching
engine, send sequence counters) the first time the communicator is used
there.  That per-communicator state is exactly why the paper can simulate
concurrent matching with OB1: one communicator per thread pair means one
matching lock per thread pair.
"""

from __future__ import annotations

from repro.mpi.constants import ANY_SOURCE
from repro.mpi.errors import (
    ERRHANDLERS,
    ERRORS_ARE_FATAL,
    CommunicatorError,
    RankError,
)
from repro.mpi.info import Info


class Communicator:
    """Global communicator descriptor."""

    __slots__ = ("world", "id", "ranks", "info", "name", "_rank_set",
                 "errhandler")

    def __init__(self, world, comm_id: int, ranks: tuple[int, ...],
                 info: Info | None = None, name: str = ""):
        if len(ranks) != len(set(ranks)):
            raise CommunicatorError(f"duplicate ranks in communicator: {ranks}")
        if not ranks:
            raise CommunicatorError("communicator must have at least one member")
        self.world = world
        self.id = comm_id
        self.ranks = tuple(ranks)
        self._rank_set = frozenset(ranks)
        self.info = info or Info()
        self.name = name or f"comm-{comm_id}"
        #: MPI_ERRORS_ARE_FATAL analogue (the MPI default): transport
        #: failures raise out of the progress engine and abort the run.
        self.errhandler = ERRORS_ARE_FATAL

    def set_errhandler(self, handler: str) -> None:
        """MPI_Comm_set_errhandler analogue; see :mod:`repro.mpi.errors`."""
        if handler not in ERRHANDLERS:
            raise ValueError(f"errhandler must be one of {ERRHANDLERS}, "
                             f"got {handler!r}")
        self.errhandler = handler

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of member ranks."""
        return len(self.ranks)

    @property
    def allow_overtaking(self) -> bool:
        """Whether the allow-overtaking info hint is set on this comm."""
        return self.info.allow_overtaking

    def contains(self, world_rank: int) -> bool:
        """Whether ``world_rank`` is a member."""
        return world_rank in self._rank_set

    def check_member(self, world_rank: int, what: str = "rank") -> None:
        """Raise RankError unless ``world_rank`` is a member (or ANY_SOURCE)."""
        if world_rank != ANY_SOURCE and world_rank not in self._rank_set:
            raise RankError(f"{what} {world_rank} is not a member of {self.name} "
                            f"(members: {self.ranks})")

    def local_rank(self, world_rank: int) -> int:
        """Communicator-relative rank of a world rank."""
        try:
            return self.ranks.index(world_rank)
        except ValueError:
            raise RankError(f"rank {world_rank} not in {self.name}") from None

    def world_rank(self, local: int) -> int:
        """World rank of a communicator-relative rank."""
        if not 0 <= local < len(self.ranks):
            raise RankError(f"local rank {local} out of range for {self.name}")
        return self.ranks[local]

    # ------------------------------------------------------------------
    def dup(self, info: Info | None = None) -> "Communicator":
        """MPI_Comm_dup: same group, new matching scope (new id)."""
        return self.world.create_comm(self.ranks, info=info or self.info.copy(),
                                      name=f"{self.name}.dup")

    def split(self, colors: dict[int, int]) -> dict[int, "Communicator"]:
        """MPI_Comm_split: partition members by color.

        ``colors`` maps every member world rank to a color; returns one
        new communicator per color (members ordered by world rank, which
        stands in for the key argument).
        """
        missing = self._rank_set - set(colors)
        if missing:
            raise CommunicatorError(f"split colors missing for ranks {sorted(missing)}")
        groups: dict[int, list[int]] = {}
        for rank in self.ranks:
            groups.setdefault(colors[rank], []).append(rank)
        return {
            color: self.world.create_comm(tuple(sorted(members)),
                                          info=self.info.copy(),
                                          name=f"{self.name}.split{color}")
            for color, members in groups.items()
        }

    def __repr__(self):  # pragma: no cover - debug aid
        return f"<Communicator {self.name} id={self.id} size={self.size}>"
