"""RMA windows: exposed memory plus epoch and completion bookkeeping.

Each member of the communicator exposes ``size_bytes`` of memory (a NumPy
byte buffer, so accumulates can reinterpret typed views in place).  The
window tracks, per *initiator* process, the set of outstanding operations
-- that is what ``MPI_Win_flush`` completes -- and per initiator the open
access epochs (passive lock / lock_all, or an active fence epoch).

Passive-target exclusive locks are bookkept (epoch required before any
op, mismatched unlocks are errors) but origin-vs-origin exclusion is not
arbitrated across processes: the paper's workloads never contend locks,
they use flush-only synchronization.  See DESIGN.md substitutions.
"""

from __future__ import annotations

import numpy as np

from repro.mpi.errors import EpochError, RankError
from repro.netsim.rdma import RmaOp


class WindowOp(RmaOp):
    """An RMA operation bound to a window and target."""

    __slots__ = ("window", "origin", "target", "target_offset")

    def __init__(self, kind: str, nbytes: int, window: "Window", origin: int,
                 target: int, target_offset: int, remote_fn=None):
        super().__init__(kind, nbytes, remote_fn=remote_fn)
        self.window = window
        self.origin = origin
        self.target = target
        self.target_offset = target_offset
        self.on_completed = self._retire

    def _retire(self) -> None:
        self.window._pending[self.origin].discard(self)


class Window:
    """One RMA window across the members of a communicator."""

    _next_id = 0

    def __init__(self, world, comm, size_bytes: int):
        if size_bytes < 0:
            raise ValueError("window size must be >= 0")
        self.world = world
        self.comm = comm
        self.size_bytes = size_bytes
        self.id = Window._next_id
        Window._next_id += 1
        self.buffers: dict[int, np.ndarray] = {
            rank: np.zeros(size_bytes, dtype=np.uint8) for rank in comm.ranks
        }
        self._pending: dict[int, set] = {rank: set() for rank in comm.ranks}
        # per-initiator epoch state: set of target ranks (or "all"/"fence")
        self._epochs: dict[int, set] = {rank: set() for rank in comm.ranks}
        # per-initiator transport errors awaiting the next flush
        self._errors: dict[int, list] = {rank: [] for rank in comm.ranks}

    # ------------------------------------------------------------------
    def buffer(self, rank: int) -> np.ndarray:
        """The window memory exposed by ``rank``."""
        try:
            return self.buffers[rank]
        except KeyError:
            raise RankError(f"rank {rank} is not in window {self.id}'s group") from None

    def check_range(self, rank: int, offset: int, nbytes: int) -> None:
        """Raise ValueError if an access falls outside the window bounds."""
        if offset < 0 or offset + nbytes > self.size_bytes:
            raise ValueError(
                f"RMA access [{offset}, {offset + nbytes}) outside window of "
                f"{self.size_bytes} bytes at rank {rank}")

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------
    def open_epoch(self, origin: int, target) -> None:
        """Record an access epoch from ``origin`` to ``target``."""
        epochs = self._epochs[origin]
        if target in epochs:
            raise EpochError(f"rank {origin} already holds an epoch for {target!r}")
        epochs.add(target)

    def close_epoch(self, origin: int, target) -> None:
        """Close ``origin``'s access epoch to ``target``."""
        epochs = self._epochs[origin]
        if target not in epochs:
            raise EpochError(f"rank {origin} has no open epoch for {target!r}")
        epochs.discard(target)

    def require_epoch(self, origin: int, target: int) -> None:
        """Raise EpochError unless an epoch covers ``origin`` -> ``target``."""
        epochs = self._epochs[origin]
        if target in epochs or "all" in epochs or "fence" in epochs:
            return
        raise EpochError(
            f"rank {origin} issued an RMA op to {target} without an access "
            f"epoch (win_lock / win_lock_all / fence required)")

    def has_epoch(self, origin: int, target) -> bool:
        """Whether ``origin`` currently holds an epoch for ``target``."""
        return target in self._epochs[origin]

    # ------------------------------------------------------------------
    # completion tracking
    # ------------------------------------------------------------------
    def track(self, op: WindowOp) -> None:
        """Register an in-flight RMA op for completion accounting."""
        self._pending[op.origin].add(op)

    def outstanding(self, origin: int, target: int | None = None) -> int:
        """Count ``origin``'s in-flight ops (optionally to one ``target``)."""
        ops = self._pending[origin]
        if target is None:
            return len(ops)
        return sum(1 for op in ops if op.target == target)

    def note_error(self, origin: int, error: Exception) -> None:
        """Record a transport failure for ``origin``'s next flush
        (ERRORS_RETURN path; see :meth:`MpiProcess._dispatch`)."""
        self._errors[origin].append(error)

    def take_errors(self, origin: int) -> list:
        """Drain and return the errors recorded for ``origin``."""
        errors, self._errors[origin] = self._errors[origin], []
        return errors

    def __repr__(self):  # pragma: no cover - debug aid
        return f"<Window id={self.id} size={self.size_bytes}B comm={self.comm.name}>"
