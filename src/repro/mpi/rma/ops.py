"""One-sided operations and synchronization.

The initiating thread's path mirrors the two-sided send path minus
matching: acquire a CRI (round-robin or dedicated), post the RDMA
descriptor, done -- the target CPU is never involved.  ``flush`` spins in
the progress engine until the initiator's outstanding operations to the
target have been acked by the remote NIC.
"""

from __future__ import annotations

import numpy as np

from repro.mpi.rma.window import WindowOp
from repro.simthread.scheduler import Delay

# Accumulate operators over typed views.
SUM_OP = "sum"
REPLACE_OP = "replace"
MAX_OP = "max"
MIN_OP = "min"


def _post(env, win, op: WindowOp, post_cost_ns: int):
    """Generator: shared CRI-acquire/post/release path for all RMA ops."""
    process = env.process
    trc = env.sched.tracer
    traced = trc.enabled
    if traced:
        tid = trc.thread_track(env.sched.current)
        trc.begin(tid, f"rma.{op.kind}", "rma",
                  {"target": op.target, "nbytes": op.nbytes})
    cri = yield from process.pool.get_instance(switch_ns=env.costs.rma_instance_switch_ns)
    yield from cri.lock.acquire()
    # No host_reserve here: one-sided ops are NIC offload -- no matching,
    # no unexpected-buffer allocation -- so the per-process host message
    # pipeline does not bound them (that is RMA's whole advantage).
    yield Delay(post_cost_ns)
    endpoint = process.endpoint_for(cri, op.target)
    win.track(op)
    yield from cri.context.post_rma(endpoint, op)
    yield from cri.lock.release()
    process.spc.rma_ops += 1
    if traced:
        trc.end(tid, {"cri": cri.index})
    return op


def put(env, win, target: int, nbytes: int, target_offset: int = 0, data=None):
    """Generator: remote write; returns the operation handle."""
    win.comm.check_member(target, "target")
    win.require_epoch(env.rank, target)
    win.check_range(target, target_offset, nbytes)
    if data is not None:
        data = np.frombuffer(bytes(data), dtype=np.uint8)
        if len(data) != nbytes:
            raise ValueError(f"data is {len(data)} bytes but nbytes={nbytes}")
    target_buf = win.buffer(target)

    def remote_write(op):
        op.remote_applied_at = env.sched.now
        if data is not None:
            target_buf[target_offset:target_offset + nbytes] = data

    op = WindowOp("put", nbytes, win, env.rank, target, target_offset, remote_write)
    op = yield from _post(env, win, op, env.costs.rma_put_post_ns)
    return op


def get(env, win, target: int, nbytes: int, target_offset: int = 0):
    """Generator: remote read; ``op.result`` holds the bytes after the op
    completes (flush or wait-on-completed)."""
    win.comm.check_member(target, "target")
    win.require_epoch(env.rank, target)
    win.check_range(target, target_offset, nbytes)
    target_buf = win.buffer(target)

    def remote_read(op):
        op.remote_applied_at = env.sched.now
        return bytes(target_buf[target_offset:target_offset + nbytes])

    op = WindowOp("get", nbytes, win, env.rank, target, target_offset, remote_read)
    op = yield from _post(env, win, op, env.costs.rma_get_post_ns)
    return op


def accumulate(env, win, target: int, values, target_offset: int = 0, op=SUM_OP):
    """Generator: remote atomic update on a typed view of the window.

    ``values`` must be a NumPy array; the target bytes at the offset are
    reinterpreted with the same dtype and combined elementwise.  The
    whole update applies atomically (MPI guarantees per-element only;
    we give the stronger guarantee the hardware event model makes free).
    """
    win.comm.check_member(target, "target")
    win.require_epoch(env.rank, target)
    values = np.asarray(values)
    nbytes = values.nbytes
    win.check_range(target, target_offset, nbytes)
    if op not in (SUM_OP, REPLACE_OP, MAX_OP, MIN_OP):
        raise ValueError(f"unknown accumulate op {op!r}")
    target_buf = win.buffer(target)

    def remote_accumulate(handle):
        handle.remote_applied_at = env.sched.now
        view = target_buf[target_offset:target_offset + nbytes].view(values.dtype)
        flat = values.reshape(-1)
        if op == SUM_OP:
            view += flat
        elif op == REPLACE_OP:
            view[:] = flat
        elif op == MAX_OP:
            np.maximum(view, flat, out=view)
        else:
            np.minimum(view, flat, out=view)

    handle = WindowOp("accumulate", nbytes, win, env.rank, target,
                      target_offset, remote_accumulate)
    handle = yield from _post(env, win, handle, env.costs.rma_acc_post_ns)
    return handle


# ----------------------------------------------------------------------
# synchronization
# ----------------------------------------------------------------------
def flush(env, win, target: int | None = None):
    """Generator: complete this process's outstanding ops (to ``target``,
    or all targets when ``None``).

    Completion of one-sided operations is a hardware counter, so the loop
    just polls it (with a progress call folded in so concurrently pending
    two-sided traffic still advances, as a real MPI_Win_flush would)."""
    costs = env.costs
    env.process.spc.rma_flushes += 1
    trc = env.sched.tracer
    traced = trc.enabled
    if traced:
        tid = trc.thread_track(env.sched.current)
        trc.begin(tid, "rma.flush", "rma",
                  {"outstanding": win.outstanding(env.rank, target)})
    yield Delay(costs.rma_flush_ns)
    while win.outstanding(env.rank, target):
        n = yield from env.progress()
        if win.outstanding(env.rank, target):
            yield Delay(costs.rma_flush_backoff_ns if n == 0 else costs.wait_poll_ns)
    if traced:
        trc.end(tid)
    errors = win.take_errors(env.rank)
    if errors:
        raise errors[0]


def win_lock(env, win, target: int, exclusive: bool = False):
    """Generator: open a passive-target access epoch to ``target``."""
    win.comm.check_member(target, "target")
    win.open_epoch(env.rank, target)
    yield Delay(env.costs.lock_acquire_ns)


def win_unlock(env, win, target: int):
    """Generator: flush ops to ``target``, then close the epoch."""
    yield from flush(env, win, target)
    win.close_epoch(env.rank, target)
    yield Delay(env.costs.lock_release_ns)


def win_lock_all(env, win):
    """Generator: open a shared epoch to every target at once."""
    win.open_epoch(env.rank, "all")
    yield Delay(env.costs.lock_acquire_ns)


def win_unlock_all(env, win):
    """Generator: flush everything, close the shared epoch."""
    yield from flush(env, win, None)
    win.close_epoch(env.rank, "all")
    yield Delay(env.costs.lock_release_ns)


def fence(env, win):
    """Generator: active-target fence: complete local ops, toggle the
    fence epoch, and synchronize the window's group with a barrier."""
    yield from flush(env, win, None)
    if win.has_epoch(env.rank, "fence"):
        win.close_epoch(env.rank, "fence")
    else:
        win.open_epoch(env.rank, "fence")
    from repro.mpi import collectives

    yield from collectives.barrier(env, win.comm)


def win_sync(env, win):
    """Generator: memory barrier on the window (MPI_Win_sync)."""
    yield Delay(env.costs.atomic_rmw_ns)
