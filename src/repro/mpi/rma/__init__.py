"""One-sided (RMA) communication: windows, operations, synchronization.

MPI-3.1 one-sided support over the simulated RDMA engine: put (remote
write), get (remote read), accumulate (remote atomic), passive-target
synchronization (lock / lock_all / flush -- the paper's focus), and
active-target fence.  No matching exists on this path; completion is
purely between the initiator and its completion queue, which is why
dedicated CRIs let RMA scale with threads (paper section IV-F).
"""

from repro.mpi.rma.window import Window, WindowOp
from repro.mpi.rma import ops

__all__ = ["Window", "WindowOp", "ops"]
