"""MPI constants: wildcards, thread levels, internal tag space."""

# Matching wildcards (match MPI's negative sentinel convention).
ANY_SOURCE = -1
ANY_TAG = -1
PROC_NULL = -2

# Thread support levels (MPI-3.1 section 12.4).  Only THREAD_MULTIPLE
# allows true thread concurrency; it is the subject of the paper.
THREAD_SINGLE = 0
THREAD_FUNNELED = 1
THREAD_SERIALIZED = 2
THREAD_MULTIPLE = 3

THREAD_LEVELS = (THREAD_SINGLE, THREAD_FUNNELED, THREAD_SERIALIZED, THREAD_MULTIPLE)

# Highest tag available to applications; collectives use tags above it so
# internal traffic can never match user receives.
TAG_UB = 2 ** 20 - 1
INTERNAL_TAG_BASE = 2 ** 20
