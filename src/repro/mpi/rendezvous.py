"""Rendezvous protocol engine (messages above the eager limit).

Small messages travel eagerly: header + payload in one fragment, buffered
by the receiver if unexpected.  Large messages cannot be buffered
speculatively, so MPI implementations switch to a rendezvous:

1. the sender transmits an **RTS** (ready-to-send: header only), which is
   sequence-validated and matched exactly like an eager message;
2. when the RTS matches a posted receive, the receiver answers **CTS**
   (clear-to-send), a control fragment that bypasses matching;
3. the sender transmits the **DATA** fragment, pre-matched to the receive
   request; its arrival completes the receive, and its injection
   completes the send.

Control replies cannot be sent from inside the matching engine (the match
lock is held and a network context would have to be acquired), so they
are queued here and flushed by the progress engine's post-round hook --
mirroring how real implementations schedule protocol acks from the
progress loop.
"""

from __future__ import annotations

from collections import deque

from repro.netsim.message import CTS, DATA, Envelope
from repro.simthread.scheduler import Delay


class RendezvousManager:
    """Per-process pending-control-fragment queue."""

    def __init__(self, process):
        self.process = process
        self._pending: deque = deque()
        self.rts_matched = 0
        self.cts_sent = 0
        self.data_sent = 0

    # ------------------------------------------------------------------
    # enqueue (called from matching / dispatch, no virtual time consumed)
    # ------------------------------------------------------------------
    def queue_cts(self, rts_env: Envelope, recv_req) -> None:
        """An RTS matched a posted receive: answer with clear-to-send."""
        self.rts_matched += 1
        sched = self.process.sched
        trc = sched.tracer
        if trc.enabled and sched.current is not None:
            trc.instant(trc.thread_track(sched.current), "rndv.rts-matched",
                        "rndv", {"src": rts_env.src, "nbytes": rts_env.nbytes})
        self._pending.append(Envelope(
            src=self.process.rank, dst=rts_env.src, comm_id=rts_env.comm_id,
            tag=rts_env.tag, seq=-1, nbytes=0, kind=CTS,
            rndv_token=rts_env.rndv_token, recv_request=recv_req))

    def queue_data(self, cts_env: Envelope) -> None:
        """A CTS arrived: release the bulk payload toward the receiver."""
        send_req = cts_env.rndv_token
        self._pending.append(Envelope(
            src=self.process.rank, dst=cts_env.src, comm_id=cts_env.comm_id,
            tag=cts_env.tag, seq=-1, nbytes=send_req.nbytes,
            payload=send_req.payload, kind=DATA,
            send_request=send_req, recv_request=cts_env.recv_request))

    # ------------------------------------------------------------------
    def flush(self):
        """Generator: transmit every queued control fragment.

        Runs in whatever thread is in the progress engine; acquires a CRI
        per fragment like any other send.
        """
        process = self.process
        while self._pending:
            env = self._pending.popleft()
            trc = process.sched.tracer
            traced = trc.enabled
            if traced:
                tid = trc.thread_track(process.sched.current)
                trc.begin(tid, "rndv.cts" if env.kind == CTS else "rndv.data",
                          "rndv", {"dst": env.dst, "nbytes": env.nbytes})
            cri = yield from process.pool.get_instance()
            yield from cri.lock.acquire()
            yield Delay(process.costs.rndv_handshake_ns)
            endpoint = process.endpoint_for(cri, env.dst)
            yield from cri.context.post_send(endpoint, env)
            yield from cri.lock.release()
            if env.kind == CTS:
                self.cts_sent += 1
            else:
                self.data_sent += 1
            if traced:
                trc.end(tid)

    @property
    def pending(self) -> int:
        """Number of parked sends still awaiting a CTS."""
        return len(self._pending)
