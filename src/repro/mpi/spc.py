"""Software-based Performance Counters.

Mirrors the Open MPI SPC infrastructure the paper reads (Eberius et al.,
EuroMPI'17): low-overhead counters exposing MPI-internal information.
The study focuses on two of them -- the number of out-of-sequence messages
and the total matching time -- which we reproduce for Table II, plus the
supporting counters around them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


@dataclass
class SPC:
    """Per-process software performance counters."""

    messages_sent: int = 0
    messages_received: int = 0
    unexpected_messages: int = 0
    out_of_sequence: int = 0
    #: total virtual time spent in the matching engine (validation, queue
    #: search, delivery, out-of-sequence buffering, structure migration).
    match_time_ns: int = 0
    #: total posted-queue elements a linear scan would have traversed.
    match_queue_scanned: int = 0
    recv_posted: int = 0
    oos_buffered_high_watermark: int = 0
    unexpected_high_watermark: int = 0
    rma_ops: int = 0
    rma_flushes: int = 0
    match_migrations: int = 0
    #: sends routed through the rendezvous (RTS/CTS/DATA) protocol
    rendezvous_sends: int = 0
    #: reliable-transport frames retransmitted after a timeout
    retransmits: int = 0
    #: frames abandoned after the retry budget (error completions)
    transport_exhausted: int = 0
    #: duplicate deliveries discarded (transport dedup + stale sequence)
    duplicates_dropped: int = 0
    #: dedicated-CRI assignments re-run because the instance died
    cri_migrations: int = 0

    def reset(self) -> None:
        """Zero every counter in place (MPI_T pvar reset semantics).

        Counter *objects* stay shared: components hold references to
        this SPC, so resetting must mutate rather than rebuild.
        """
        for f in dataclasses.fields(self):
            setattr(self, f.name, f.default)

    def note_oos_depth(self, depth: int) -> None:
        """Track the out-of-sequence buffer's high-watermark depth."""
        if depth > self.oos_buffered_high_watermark:
            self.oos_buffered_high_watermark = depth

    def note_unexpected_depth(self, depth: int) -> None:
        """Track the unexpected-message queue's high-watermark depth."""
        if depth > self.unexpected_high_watermark:
            self.unexpected_high_watermark = depth

    @property
    def out_of_sequence_fraction(self) -> float:
        """Fraction of received messages that arrived out of sequence."""
        if self.messages_received == 0:
            return 0.0
        return self.out_of_sequence / self.messages_received

    @property
    def match_time_ms(self) -> float:
        """Total matching time in milliseconds."""
        return self.match_time_ns / 1e6

    def as_dict(self) -> dict:
        """All counters (plus derived ratios) as a plain dict."""
        return {
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "unexpected_messages": self.unexpected_messages,
            "out_of_sequence": self.out_of_sequence,
            "out_of_sequence_fraction": self.out_of_sequence_fraction,
            "match_time_ms": self.match_time_ms,
            "match_queue_scanned": self.match_queue_scanned,
            "recv_posted": self.recv_posted,
            "oos_buffered_high_watermark": self.oos_buffered_high_watermark,
            "unexpected_high_watermark": self.unexpected_high_watermark,
            "rma_ops": self.rma_ops,
            "rma_flushes": self.rma_flushes,
            "match_migrations": self.match_migrations,
            "rendezvous_sends": self.rendezvous_sends,
            "retransmits": self.retransmits,
            "transport_exhausted": self.transport_exhausted,
            "duplicates_dropped": self.duplicates_dropped,
            "cri_migrations": self.cri_migrations,
        }


@dataclass
class SPCAggregate:
    """Sum of SPCs across processes (what the experiment tables report)."""

    counters: list = field(default_factory=list)

    def add(self, spc: SPC) -> None:
        """Register one process's SPC for aggregation."""
        self.counters.append(spc)

    def clear(self) -> None:
        """Drop every registered SPC (the counters themselves survive)."""
        self.counters.clear()

    def total(self) -> SPC:
        """Element-wise sum of every registered SPC."""
        out = SPC()
        for c in self.counters:
            out.messages_sent += c.messages_sent
            out.messages_received += c.messages_received
            out.unexpected_messages += c.unexpected_messages
            out.out_of_sequence += c.out_of_sequence
            out.match_time_ns += c.match_time_ns
            out.match_queue_scanned += c.match_queue_scanned
            out.recv_posted += c.recv_posted
            out.rma_ops += c.rma_ops
            out.rma_flushes += c.rma_flushes
            out.match_migrations += c.match_migrations
            out.rendezvous_sends += c.rendezvous_sends
            out.retransmits += c.retransmits
            out.transport_exhausted += c.transport_exhausted
            out.duplicates_dropped += c.duplicates_dropped
            out.cri_migrations += c.cri_migrations
            out.oos_buffered_high_watermark = max(
                out.oos_buffered_high_watermark, c.oos_buffered_high_watermark)
            out.unexpected_high_watermark = max(
                out.unexpected_high_watermark, c.unexpected_high_watermark)
        return out
