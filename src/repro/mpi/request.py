"""Request objects for nonblocking operations."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Status:
    """Completion status of a receive (MPI_Status)."""

    source: int
    tag: int
    nbytes: int


class Request:
    """Base handle for an in-flight nonblocking operation."""

    __slots__ = ("completed", "error", "completed_at")

    def __init__(self):
        self.completed = False
        self.error: Exception | None = None
        self.completed_at: int | None = None

    def _complete(self, now: int | None = None) -> None:
        self.completed = True
        self.completed_at = now

    def _fail(self, error: Exception, now: int | None = None) -> None:
        self.error = error
        self.completed = True
        self.completed_at = now

    def test(self) -> bool:
        """Nonblocking completion check (MPI_Test, sans progress)."""
        return self.completed


class SendRequest(Request):
    """Handle for an isend.

    Eager sends complete at local (buffered) completion; rendezvous sends
    complete when the DATA fragment has been injected, with the payload
    parked on the request until the receiver's CTS releases it.
    """

    __slots__ = ("dst", "tag", "nbytes", "seq", "payload")

    def __init__(self, dst: int, tag: int, nbytes: int):
        super().__init__()
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.seq: int | None = None
        self.payload = None


class RecvRequest(Request):
    """Handle for an irecv; completes when matched and delivered."""

    __slots__ = ("src", "tag", "capacity", "data", "status", "cancelled",
                 "comm_id")

    def __init__(self, src: int, tag: int, capacity: int,
                 comm_id: int | None = None):
        super().__init__()
        self.src = src
        self.tag = tag
        self.capacity = capacity
        self.data = None
        self.status: Status | None = None
        self.cancelled = False
        self.comm_id = comm_id

    def _cancel(self, now: int | None = None) -> None:
        self.cancelled = True
        self._complete(now)


class PersistentRequest(Request):
    """A persistent communication request (MPI_Send_init / MPI_Recv_init).

    Created inactive; each :meth:`MpiThreadEnv.start` activates one
    communication using the frozen argument set, and completion returns
    the request to the inactive state so it can be started again.  The
    per-iteration setup cost this avoids is the draw of persistent
    requests for lightweight-thread runtimes (Grant et al., ExaMPI'15,
    cited by the paper).
    """

    __slots__ = ("kind", "args", "active", "inner", "starts")

    SEND = "send"
    RECV = "recv"

    def __init__(self, kind: str, args: dict):
        super().__init__()
        if kind not in (self.SEND, self.RECV):
            raise ValueError(f"persistent kind must be send or recv, got {kind!r}")
        self.kind = kind
        self.args = dict(args)
        self.active = False
        self.inner: Request | None = None
        self.starts = 0

    @property
    def completed(self):  # type: ignore[override]
        """True when inactive, or when the current started op finished.

        Inactive requests behave as completed (MPI semantics: waiting on
        an inactive persistent request returns immediately).
        """
        if not self.active:
            return True
        return self.inner is not None and self.inner.completed

    @completed.setter
    def completed(self, value):  # pragma: no cover - Request.__init__ hook
        """Ignore writes; completion is derived from the inner request."""

    @property
    def error(self):  # type: ignore[override]
        """The current started op's transport error, if any."""
        return self.inner.error if self.inner is not None else None

    @error.setter
    def error(self, value):  # pragma: no cover - Request.__init__ hook
        """Ignore writes; errors are derived from the inner request."""

    @property
    def data(self):
        """Payload delivered by the current started op (recv side)."""
        return getattr(self.inner, "data", None)

    @property
    def status(self):
        """Status object of the current started op, if any."""
        return getattr(self.inner, "status", None)

    def _activate(self, inner: Request) -> None:
        self.inner = inner
        self.active = True
        self.starts += 1

    def _deactivate(self) -> None:
        self.active = False
