"""MPI info objects; carries the assertion keys the paper studies.

The one that matters here is ``mpi_assert_allow_overtaking`` (paper
section IV-D): attached to a communicator it releases the non-overtaking
matching guarantee, letting the implementation skip sequence-number
validation and match every incoming message immediately.
"""

from __future__ import annotations

ALLOW_OVERTAKING = "mpi_assert_allow_overtaking"

_TRUE_STRINGS = ("true", "1", "yes", "on")


class Info:
    """A string-keyed info dictionary with typed accessors."""

    def __init__(self, entries: dict | None = None):
        self._entries: dict[str, str] = {}
        for k, v in (entries or {}).items():
            self.set(k, v)

    def set(self, key: str, value) -> None:
        """Store ``value`` under ``key`` (stringified; bools lowercase)."""
        if not isinstance(key, str) or not key:
            raise ValueError("info keys must be non-empty strings")
        self._entries[key] = str(value).lower() if isinstance(value, bool) else str(value)

    def get(self, key: str, default: str | None = None) -> str | None:
        """The stored string for ``key``, or ``default``."""
        return self._entries.get(key, default)

    def get_bool(self, key: str, default: bool = False) -> bool:
        """Interpret the stored value as a boolean hint."""
        raw = self._entries.get(key)
        if raw is None:
            return default
        return raw.strip().lower() in _TRUE_STRINGS

    @property
    def allow_overtaking(self) -> bool:
        """The mpi_assert_allow_overtaking hint (section IV-B)."""
        return self.get_bool(ALLOW_OVERTAKING)

    def keys(self):
        """View of the stored hint keys."""
        return self._entries.keys()

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __eq__(self, other) -> bool:
        return isinstance(other, Info) and self._entries == other._entries

    def copy(self) -> "Info":
        """Independent copy (communicators snapshot their info)."""
        return Info(dict(self._entries))
