"""An MPI-like message-passing library on simulated threads and networks.

This is the substrate the paper's designs are implemented *in*: a faithful
(if reduced) model of Open MPI's OB1 point-to-point stack plus the MPI-3.1
one-sided interface:

* communicators with per-(peer, communicator) send sequence numbers;
* a matching engine per (process, communicator) -- posted-receive and
  unexpected-message queues, sequence validation, out-of-sequence
  buffering, ``MPI_ANY_SOURCE`` / ``MPI_ANY_TAG`` wildcards, and the
  ``mpi_assert_allow_overtaking`` info key;
* blocking and nonblocking two-sided operations driven by the progress
  engines from :mod:`repro.core`;
* one-sided windows with put/get/accumulate and passive-target
  (lock/flush) plus fence synchronization;
* software performance counters (SPCs) mirroring the Open MPI counters
  the paper reads: messages sent/received, unexpected and out-of-sequence
  counts, total match time.

Entry point: build an :class:`~repro.mpi.world.MpiWorld`, then run
workload generators against per-thread :class:`~repro.mpi.env.MpiThreadEnv`
handles.
"""

from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    THREAD_FUNNELED,
    THREAD_MULTIPLE,
    THREAD_SERIALIZED,
    THREAD_SINGLE,
)
from repro.mpi.datatypes import BYTE, DOUBLE, FLOAT, INT, Datatype
from repro.mpi.errors import (
    CommunicatorError,
    EpochError,
    MpiError,
    RankError,
    TagError,
    TruncationError,
)
from repro.mpi.info import Info
from repro.mpi.spc import SPC
from repro.mpi.request import RecvRequest, Request, SendRequest, Status
from repro.mpi.communicator import Communicator
from repro.mpi.world import MpiWorld
from repro.mpi.env import MpiThreadEnv

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BYTE",
    "Communicator",
    "CommunicatorError",
    "DOUBLE",
    "Datatype",
    "EpochError",
    "FLOAT",
    "INT",
    "Info",
    "MpiError",
    "MpiThreadEnv",
    "MpiWorld",
    "PROC_NULL",
    "RankError",
    "RecvRequest",
    "Request",
    "SPC",
    "SendRequest",
    "Status",
    "THREAD_FUNNELED",
    "THREAD_MULTIPLE",
    "THREAD_SERIALIZED",
    "THREAD_SINGLE",
    "TagError",
    "TruncationError",
]
