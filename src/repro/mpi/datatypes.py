"""Minimal datatype support: size descriptors for payload accounting.

Payloads in the simulator are Python objects (or byte strings); datatypes
exist so callers can express counts the way MPI programs do and so the
wire-byte accounting matches ``count * extent``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Datatype:
    """A named elementary datatype with a fixed extent in bytes."""

    name: str
    size: int

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError("datatype size must be positive")

    def extent(self, count: int) -> int:
        """Total bytes for ``count`` elements."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return self.size * count


BYTE = Datatype("byte", 1)
INT = Datatype("int", 4)
FLOAT = Datatype("float", 4)
DOUBLE = Datatype("double", 8)
