"""Match queues with wildcard search and scan-depth accounting.

A real OB1-style matching engine keeps the posted-receive queue and the
unexpected-message queue as linked lists and pays a linear scan per match.
We need two things from the structure:

1. the *correct* MPI match: the oldest live entry compatible with the
   query, honoring ``MPI_ANY_SOURCE`` / ``MPI_ANY_TAG``;
2. the *scan depth* a linear implementation would traverse, so the cost
   model can charge it in virtual time.

To keep host time sublinear while virtual time stays faithful, entries
live in per-``(src, tag)`` buckets (FIFO each) and a Fenwick tree over
insertion ids counts live predecessors in O(log n).

Two flavors share the class:

* ``entry_wildcards=True`` -- the posted-receive queue: entries may carry
  wildcards, queries (incoming messages) are concrete.
* ``entry_wildcards=False`` -- the unexpected-message queue: entries are
  concrete, queries (newly posted receives) may carry wildcards.
"""

from __future__ import annotations

from collections import deque

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.util.fenwick import FenwickTree


class MatchQueue:
    """Ordered queue of (src, tag, item) supporting oldest-match queries."""

    __slots__ = ("_buckets", "_live", "_next_id", "entry_wildcards", "inserted", "matched")

    def __init__(self, entry_wildcards: bool):
        self._buckets: dict[tuple[int, int], deque] = {}
        self._live = FenwickTree()
        self._next_id = 0
        self.entry_wildcards = entry_wildcards
        self.inserted = 0
        self.matched = 0

    def __len__(self) -> int:
        return self._live.total

    # ------------------------------------------------------------------
    def insert(self, src: int, tag: int, item) -> int:
        """Append an entry; returns its insertion id."""
        if not self.entry_wildcards and (src == ANY_SOURCE or tag == ANY_TAG):
            raise ValueError("unexpected-message queue entries must be concrete")
        entry_id = self._next_id
        self._next_id += 1
        bucket = self._buckets.get((src, tag))
        if bucket is None:
            bucket = deque()
            self._buckets[(src, tag)] = bucket
        bucket.append((entry_id, item))
        self._live.add(entry_id, 1)
        self.inserted += 1
        return entry_id

    # ------------------------------------------------------------------
    def _candidate_buckets(self, src: int, tag: int):
        if self.entry_wildcards:
            # Concrete query against possibly-wildcard entries.
            keys = ((src, tag), (src, ANY_TAG), (ANY_SOURCE, tag), (ANY_SOURCE, ANY_TAG))
            for key in keys:
                bucket = self._buckets.get(key)
                if bucket:
                    yield bucket
        else:
            # Possibly-wildcard query against concrete entries.
            if src != ANY_SOURCE and tag != ANY_TAG:
                bucket = self._buckets.get((src, tag))
                if bucket:
                    yield bucket
            else:
                for (esrc, etag), bucket in self._buckets.items():
                    if not bucket:
                        continue
                    if (src == ANY_SOURCE or esrc == src) and (tag == ANY_TAG or etag == tag):
                        yield bucket

    def match(self, src: int, tag: int):
        """Remove and return the oldest compatible entry.

        Returns ``(item, scan_depth)`` or ``None``.  ``scan_depth`` is the
        1-based number of entries a linear scan from the head would have
        visited to reach the match.
        """
        best_bucket = None
        best_id = None
        for bucket in self._candidate_buckets(src, tag):
            head_id = bucket[0][0]
            if best_id is None or head_id < best_id:
                best_id = head_id
                best_bucket = bucket
        if best_bucket is None:
            return None
        entry_id, item = best_bucket.popleft()
        scan_depth = self._live.count_before(entry_id) + 1
        self._live.add(entry_id, -1)
        self.matched += 1
        return item, scan_depth

    def peek(self, src: int, tag: int):
        """Like :meth:`match` but non-destructive.

        Returns ``(item, scan_depth)`` or ``None``; the entry stays live.
        """
        best_bucket = None
        best_id = None
        for bucket in self._candidate_buckets(src, tag):
            head_id = bucket[0][0]
            if best_id is None or head_id < best_id:
                best_id = head_id
                best_bucket = bucket
        if best_bucket is None:
            return None
        entry_id, item = best_bucket[0]
        return item, self._live.count_before(entry_id) + 1

    def remove(self, src: int, tag: int, item) -> bool:
        """Remove a specific entry (e.g. request cancellation)."""
        bucket = self._buckets.get((src, tag))
        if not bucket:
            return False
        for i, (entry_id, stored) in enumerate(bucket):
            if stored is item:
                del bucket[i]
                self._live.add(entry_id, -1)
                return True
        return False

    def items(self) -> list:
        """All live entries in insertion order (diagnostics/tests)."""
        everything = []
        for (src, tag), bucket in self._buckets.items():
            for entry_id, item in bucket:
                everything.append((entry_id, src, tag, item))
        everything.sort(key=lambda e: e[0])
        return everything
