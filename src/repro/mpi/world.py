"""World construction: nodes, NICs, processes, communicators.

A :class:`MpiWorld` is the top-level builder.  Typical two-node setups:

* *thread mode* (the paper's focus): ``nprocs=2`` with many simulated
  threads per process;
* *process mode* (the baseline): ``nprocs=2*pairs`` single-threaded
  processes, half per node, sharing each node's NIC.

Example::

    sched = Scheduler(seed=1)
    world = MpiWorld(sched, nprocs=2,
                     config=ThreadingConfig(num_instances=20,
                                            assignment="dedicated",
                                            progress="concurrent"))
    env = world.env(rank=0, name="sender-0")
    sched.spawn(my_workload(env))
    sched.run()
"""

from __future__ import annotations

from repro.core.config import CostModel, ThreadingConfig
from repro.mpi.communicator import Communicator
from repro.mpi.errors import CommunicatorError
from repro.mpi.info import Info
from repro.mpi.process import MpiProcess
from repro.mpi.spc import SPCAggregate
from repro.netsim.fabric import Fabric, FabricParams
from repro.netsim.ib import IB_EDR


def default_placement(nprocs: int, nodes: int) -> list[int]:
    """Contiguous block placement: first half on node 0, etc."""
    if nodes < 1:
        raise ValueError("need at least one node")
    return [min(r * nodes // nprocs, nodes - 1) for r in range(nprocs)]


class MpiWorld:
    """All global state of one simulated MPI job."""

    def __init__(self, sched, nprocs: int = 2, nodes: int = 2,
                 config: ThreadingConfig | None = None,
                 costs: CostModel | None = None,
                 fabric_params: FabricParams | None = None,
                 placement: list[int] | None = None,
                 lock_fairness: str = "unfair"):
        if nprocs < 1:
            raise ValueError("need at least one process")
        self.sched = sched
        self.config = config or ThreadingConfig()
        self.costs = costs or CostModel()
        self.fabric = Fabric(sched, fabric_params or IB_EDR)
        self.nics = [self.fabric.create_nic() for _ in range(nodes)]
        placement = placement or default_placement(nprocs, nodes)
        if len(placement) != nprocs:
            raise ValueError(f"placement must list a node for each of {nprocs} ranks")
        self.placement = list(placement)
        self.processes = [
            MpiProcess(self, rank, self.nics[placement[rank]], self.config,
                       self.costs, lock_fairness)
            for rank in range(nprocs)
        ]
        self._comms: dict[int, Communicator] = {}
        self._next_comm_id = 0
        self.comm_world = self.create_comm(tuple(range(nprocs)), name="MPI_COMM_WORLD")
        #: no-progress watchdog installed by :func:`repro.faults.install_faults`
        self.watchdog = None

    # ------------------------------------------------------------------
    @property
    def nprocs(self) -> int:
        """Number of simulated MPI processes."""
        return len(self.processes)

    def create_comm(self, ranks: tuple[int, ...], info: Info | None = None,
                    name: str = "") -> Communicator:
        """Create a communicator over ``ranks`` with a fresh context id."""
        for r in ranks:
            if not 0 <= r < self.nprocs:
                raise CommunicatorError(f"rank {r} does not exist (nprocs={self.nprocs})")
        comm = Communicator(self, self._next_comm_id, tuple(ranks), info, name)
        self._comms[comm.id] = comm
        self._next_comm_id += 1
        return comm

    def comm_by_id(self, comm_id: int) -> Communicator:
        """Look up a communicator by context id."""
        try:
            return self._comms[comm_id]
        except KeyError:
            raise CommunicatorError(f"no communicator with id {comm_id}") from None

    # ------------------------------------------------------------------
    def env(self, rank: int, name: str | None = None):
        """Build a per-thread API handle bound to ``rank``'s process."""
        from repro.mpi.env import MpiThreadEnv

        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} does not exist (nprocs={self.nprocs})")
        return MpiThreadEnv(self.processes[rank], name)

    def latency_total(self):
        """Merged delivery-latency histogram over all processes."""
        from repro.util.latency import LatencyHistogram

        total = LatencyHistogram()
        for p in self.processes:
            total.merge(p.latency)
        return total

    def spc_total(self):
        """Aggregate SPC counters over all processes."""
        agg = SPCAggregate()
        for p in self.processes:
            agg.add(p.spc)
        return agg.total()

    def obs_total(self) -> dict:
        """Summed lock/progress observability gauges over all processes."""
        total: dict = {}
        for p in self.processes:
            for key, value in p.obs_counters().items():
                total[key] = total.get(key, 0) + value
        return total

    def matching_engines(self):
        """Every materialized matching engine (metrics sampling helper)."""
        for p in self.processes:
            for state in p.comm_states:
                yield state.matching

    def __repr__(self):  # pragma: no cover - debug aid
        return (f"<MpiWorld nprocs={self.nprocs} nodes={len(self.nics)} "
                f"config={self.config}>")
