"""One MPI process: rank, CRI pool, progress engine, matching state.

The process is where the layers meet: it owns the CRI pool (from
:mod:`repro.core`), the progress engine configured by the run's
:class:`~repro.core.config.ThreadingConfig`, the per-communicator matching
engines, and the SPC counters.  It also models the per-process shared
host bottleneck (``host_reserve``): memory allocator, cache coherence and
on-node bandwidth impose a minimum gap between consecutive fully-processed
messages of one process, which is what separates a 20-thread process from
20 single-threaded processes even when all software locks are gone.
"""

from __future__ import annotations

from repro.core.config import CostModel, ThreadingConfig
from repro.core.pool import CRIPool
from repro.core.progress import make_progress_engine
from repro.mpi.matching import CommState
from repro.mpi.rendezvous import RendezvousManager
from repro.mpi.errors import ERRORS_RETURN, TransportError
from repro.mpi.request import Status
from repro.mpi.spc import SPC
from repro.netsim.cq import (
    RecvArrival,
    RmaCompletion,
    SendCompletion,
    TransportFailure,
)
from repro.netsim.message import CTS, DATA
from repro.simthread.scheduler import Delay
from repro.util.latency import LatencyHistogram


class MpiProcess:
    """Per-rank state of the simulated MPI library."""

    def __init__(self, world, rank: int, nic, config: ThreadingConfig,
                 costs: CostModel, lock_fairness: str = "unfair"):
        self.world = world
        #: the world's cooperative thread scheduler (fixed at construction,
        #: cached flat for the per-message fast path)
        self.sched = world.sched
        self.rank = rank
        self.nic = nic
        self.config = config
        self.costs = costs
        # constant per-event costs, flattened from the frozen CostModel;
        # the Delay records are reused across events (the scheduler only
        # reads them)
        self._host_gap = costs.host_gap_ns
        self._req_complete_delay = Delay(costs.request_complete_ns)
        self._rndv_handshake_delay = Delay(costs.rndv_handshake_ns)
        self._wait_backoff_delay = Delay(costs.wait_backoff_ns)
        self._wait_poll_delay = Delay(costs.wait_poll_ns)
        self.spc = SPC()
        self.pool = CRIPool(world.sched, nic, config, costs, lock_fairness)
        # The transport and the pool count retransmits/migrations into
        # this process's SPC.
        self.pool.spc = self.spc
        for cri in self.pool.instances:
            cri.context.spc = self.spc
        self.rndv = RendezvousManager(self)
        #: end-to-end latency of messages delivered at this process
        self.latency = LatencyHistogram()
        self.progress_engine = make_progress_engine(
            world.sched, self.pool, config, costs, self._dispatch,
            post_round=self.rndv.flush)
        self._comm_states: dict[int, CommState] = {}
        self._host_free_at = 0

    # ------------------------------------------------------------------
    def comm_state(self, comm) -> CommState:
        """This process's per-communicator state (lazily created)."""
        state = self._comm_states.get(comm.id)
        if state is None:
            comm.check_member(self.rank, "local rank")
            state = CommState(self.sched, self, comm)
            self._comm_states[comm.id] = state
        return state

    def comm_state_by_id(self, comm_id: int) -> CommState:
        """Per-communicator state looked up by context id."""
        state = self._comm_states.get(comm_id)
        if state is None:
            state = self.comm_state(self.world.comm_by_id(comm_id))
        return state

    @property
    def comm_states(self) -> tuple:
        """All materialized per-communicator states, in creation order."""
        return tuple(self._comm_states.values())

    def obs_counters(self) -> dict:
        """Lock/progress gauges derived from live structures.

        The observability layer (``repro.obs``) and the MPI_T pvar
        surface both read contention through this one accessor: match-
        lock and CRI-lock cumulative wait/hold time, try-lock failures,
        and progress-engine call/denial counts.
        """
        match_wait = match_hold = 0
        for state in self._comm_states.values():
            lock = state.matching.lock
            match_wait += lock.wait_time_ns
            match_hold += lock.hold_time_ns
        cri_wait = cri_hold = cri_tryfails = 0
        for cri in self.pool.instances:
            cri_wait += cri.lock.wait_time_ns
            cri_hold += cri.lock.hold_time_ns
            cri_tryfails += cri.lock.tryfails
        engine = self.progress_engine
        progress_lock = getattr(engine, "global_lock", None)
        return {
            "match_lock_wait_ns": match_wait,
            "match_lock_hold_ns": match_hold,
            "cri_lock_wait_ns": cri_wait,
            "cri_lock_hold_ns": cri_hold,
            "cri_lock_tryfails": cri_tryfails,
            "progress_calls": engine.calls,
            "progress_denied": engine.denied,
            "progress_lock_wait_ns":
                progress_lock.wait_time_ns if progress_lock else 0,
        }

    def obs_locks(self) -> list:
        """Every lock this process owns (match + CRI + progress global)."""
        locks = [state.matching.lock for state in self._comm_states.values()]
        locks.extend(cri.lock for cri in self.pool.instances)
        progress_lock = getattr(self.progress_engine, "global_lock", None)
        if progress_lock is not None:
            locks.append(progress_lock)
        return locks

    # ------------------------------------------------------------------
    def host_reserve(self) -> int:
        """Reserve one slot of the process's host pipeline.

        Returns the extra wait (ns) the caller must add to its delay so
        that fully-processed messages of this process are spaced at least
        ``host_gap_ns`` apart.
        """
        now = self.sched._now
        start = self._host_free_at if self._host_free_at > now else now
        self._host_free_at = start + self._host_gap
        return start - now

    # ------------------------------------------------------------------
    def endpoint_for(self, cri, dst_rank: int):
        """Connection from this CRI to the destination's paired context.

        The destination context is the peer's instance with the same index
        modulo the peer's pool size, so symmetric dedicated assignments
        produce fully private channels per thread pair.
        """
        dst_proc = self.world.processes[dst_rank]
        dst_pool = dst_proc.pool
        dst_ctx = dst_pool.instances[cri.index % len(dst_pool)].context
        return cri.endpoint_to(dst_ctx)

    # ------------------------------------------------------------------
    def _dispatch(self, event):
        """Generator: handle one completion event; returns completions."""
        watchdog = self.world.watchdog
        if watchdog is not None:
            watchdog.note()
        if type(event) is RecvArrival:
            env = event.envelope
            if env.kind == CTS:
                # Rendezvous clear-to-send: release the bulk data.
                self.rndv.queue_data(env)
                yield self._rndv_handshake_delay
                return 1
            if env.kind == DATA:
                yield from self._deliver_rndv_data(env)
                return 1
            state = self._comm_states.get(env.comm_id)
            if state is None:
                state = self.comm_state_by_id(env.comm_id)
            count = yield from state.matching.handle_arrival(env)
            return count
        if type(event) is SendCompletion:
            event.request._complete(self.sched._now)
            yield self._req_complete_delay
            return 1
        if type(event) is RmaCompletion:
            op = event.op
            op.mark_completed(self.sched._now)
            notify = getattr(op, "on_completed", None)
            if notify is not None:
                notify()
            yield self._req_complete_delay
            return 1
        if type(event) is TransportFailure:
            yield from self._dispatch_transport_failure(event)
            return 1
        raise TypeError(f"unknown completion event {event!r}")

    def _dispatch_transport_failure(self, event):
        """Generator: surface a transport error completion.

        The owning communicator's error handler decides: ERRORS_ARE_FATAL
        (the default) raises here, aborting the run from the progress
        engine with a diagnosable :class:`TransportError`; ERRORS_RETURN
        fails the originating request/operation so the error surfaces
        from ``wait``/``flush`` at the caller.
        """
        env, op = event.envelope, event.op
        if env is not None:
            error = TransportError(
                f"send {env.src}->{env.dst} (comm={env.comm_id}, tag={env.tag}, "
                f"seq={env.seq}, kind={env.kind}): {event.reason}")
            comm = self.world.comm_by_id(env.comm_id)
            if comm.errhandler != ERRORS_RETURN:
                raise error
            if env.send_request is not None and not env.send_request.completed:
                env.send_request._fail(error, self.sched.now)
            yield Delay(self.costs.request_complete_ns)
            return
        error = TransportError(
            f"rma {op.kind} of {op.nbytes} bytes: {event.reason}")
        window = getattr(op, "window", None)
        if window is None or window.comm.errhandler != ERRORS_RETURN:
            raise error
        op.error = error
        window.note_error(op.origin, error)
        # Retire through the hardware-counter path so flush terminates
        # (and then reports the recorded error).
        op.mark_completed(self.sched.now)
        if op.on_completed is not None:
            op.on_completed()
        yield Delay(self.costs.request_complete_ns)

    def _deliver_rndv_data(self, env):
        """Generator: a pre-matched DATA fragment completes its receive."""
        req = env.recv_request
        work = (self.costs.request_complete_ns
                + int(env.nbytes * self.costs.copy_per_byte_ns)
                + self.host_reserve())
        if not req.completed:  # a truncating RTS already failed it
            req.data = env.payload
            req.status = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
            req._complete(self.sched.now)
        if env.sent_at is not None:
            self.latency.record(self.sched.now - env.sent_at)
        self.spc.messages_received += 1
        yield Delay(work)

    def __repr__(self):  # pragma: no cover - debug aid
        return f"<MpiProcess rank={self.rank} nic={self.nic.nic_id} cris={len(self.pool)}>"
