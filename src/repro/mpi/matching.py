"""The matching engine: sequence validation, queues, delivery.

This is the paper's central bottleneck (section II-C, III-F).  One engine
exists per (process, communicator) -- the OB1 design -- so creating one
communicator per thread pair yields effectively concurrent matching.

Responsibilities per incoming message, all under this communicator's
match lock:

1. **Sequence validation** (skipped under ``mpi_assert_allow_overtaking``):
   messages from each source must be processed in send order.  An
   out-of-sequence arrival is buffered (memory allocation in the critical
   path -- the expensive operation the paper highlights) until its
   predecessors arrive.
2. **Queue search**: match the message against posted receives (linear
   scan cost, wildcard-aware), or store it in the unexpected queue.
3. **Delivery**: complete the receive request, copy payload, record SPCs.

The *migration penalty*: when the thread operating the matching
structures differs from the previous one, the working set moves between
core caches.  Under serial progress one thread handles long batches and
the penalty amortizes; under concurrent progress each message tends to be
matched by a different thread and matching time inflates ~3x -- exactly
the effect in the paper's Table II.
"""

from __future__ import annotations

from repro.mpi.constants import ANY_SOURCE
from repro.mpi.errors import TruncationError
from repro.mpi.matchqueue import MatchQueue
from repro.mpi.request import Status
from repro.netsim.message import RTS
from repro.simthread.atomics import AtomicCounter
from repro.simthread.scheduler import Delay
from repro.simthread.sync import SimLock


class MatchingEngine:
    """Receive-side matching state for one (process, communicator)."""

    def __init__(self, sched, process, comm):
        self.sched = sched
        self.process = process
        self.comm = comm
        self.costs = process.costs
        self.spc = process.spc
        self.lock = SimLock(sched, self.costs.lock_costs(),
                            name=f"match-p{process.rank}-c{comm.id}")
        self.posted = MatchQueue(entry_wildcards=True)
        self.unexpected = MatchQueue(entry_wildcards=False)
        self.expected_seq: dict[int, int] = {}
        self.oos_buffer: dict[int, dict[int, object]] = {}
        self.allow_overtaking = comm.allow_overtaking
        self._last_matcher = None
        self._last_match_at = -(10 ** 18)
        # flattened frozen costs + a reusable Delay for the constant
        # receive-post charge (arrival-path hot loop)
        costs = self.costs
        self._hot_window = costs.match_hot_window_ns
        self._migration_ns = costs.match_migration_ns
        self._recv_post_delay = Delay(costs.recv_post_ns)

    def _trace_depths(self, trc) -> None:
        """Sample this engine's queue depths on its trace track."""
        trc.counter(
            trc.resource_track("queue", f"q:{self.lock.name}", key=id(self)),
            {"posted": len(self.posted),
             "unexpected": len(self.unexpected),
             "oos": sum(len(buf) for buf in self.oos_buffer.values())})

    # ------------------------------------------------------------------
    def _migration(self) -> int:
        """Cache-migration penalty when a different thread *matches*.

        Only the arrival path charges this: matching walks the full
        queue structures, so a holder change drags the whole working set
        between core caches.  Posting touches a single queue node and is
        treated as migration-neutral (it neither pays nor resets the
        penalty), which keeps serial progress amortized even while many
        threads interleave their receive posts.
        """
        sched = self.sched
        now = sched._now
        me = sched.current
        hot = (now - self._last_match_at) < self._hot_window
        changed = self._last_matcher is not None and self._last_matcher is not me
        self._last_matcher = me
        self._last_match_at = now
        if changed and hot:
            self.spc.match_migrations += 1
            return self._migration_ns
        return 0

    def _deliver(self, req, env) -> None:
        """Complete a matched receive (bookkeeping only; cost is charged
        by the caller)."""
        now = self.sched._now
        if env.nbytes > req.capacity and req.capacity != 0:
            req._fail(TruncationError(
                f"message of {env.nbytes} bytes truncates receive buffer of "
                f"{req.capacity} bytes (src={env.src}, tag={env.tag})"), now)
        else:
            req.data = env.payload
            req.status = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
            req._complete(now)
        if env.sent_at is not None:
            self.process.latency.record(now - env.sent_at)
        self.spc.messages_received += 1

    def _on_matched(self, req, env) -> tuple[int, int]:
        """A message met its receive; returns ``(extra_work_ns, done)``.

        Eager messages deliver immediately.  An RTS instead schedules the
        clear-to-send reply; delivery happens when the DATA fragment
        lands (handled by the process dispatcher, outside matching).  A
        truncating RTS fails the request now but still answers CTS so
        the sender can complete.
        """
        if env.kind == RTS:
            if env.nbytes > req.capacity and req.capacity != 0:
                req._fail(TruncationError(
                    f"rendezvous message of {env.nbytes} bytes truncates "
                    f"receive buffer of {req.capacity} bytes "
                    f"(src={env.src}, tag={env.tag})"), self.sched.now)
            self.process.rndv.queue_cts(env, req)
            return self.costs.rndv_handshake_ns, 1
        self._deliver(req, env)
        return self.costs.match_deliver_ns, 1

    def _match_one(self, env) -> tuple[int, int]:
        """Match one in-sequence (or overtaking) message.

        Returns ``(work_ns, completions)``.
        """
        costs = self.costs
        work = costs.match_base_ns
        m = self.posted.match(env.src, env.tag)
        if m is not None:
            req, scanned = m
            self.spc.match_queue_scanned += scanned
            work += scanned * costs.match_search_per_elem_ns
            extra, done = self._on_matched(req, env)
            return work + extra, done
        self.unexpected.insert(env.src, env.tag, env)
        self.spc.unexpected_messages += 1
        self.spc.note_unexpected_depth(len(self.unexpected))
        return work + costs.unexpected_insert_ns, 0

    # ------------------------------------------------------------------
    def post_recv(self, req):
        """Generator: post a receive; match unexpected first (MPI rule).

        Request setup (allocation, argument marshalling) happens outside
        the match lock; only the unexpected-queue search and the queue
        insertion run inside the critical section, as in OB1.
        """
        costs = self.costs
        self.spc.recv_posted += 1
        trc = self.sched.tracer
        traced = trc.enabled
        if traced:
            tid = trc.thread_track(self.sched.current)
            trc.begin(tid, "match.post", "match")
        yield self._recv_post_delay
        yield from self.lock.acquire()
        work = costs.match_base_ns // 4
        m = self.unexpected.match(req.src, req.tag)
        if m is not None:
            env, scanned = m
            extra, _ = self._on_matched(req, env)
            work += scanned * costs.match_search_per_elem_ns + extra
        else:
            self.posted.insert(req.src, req.tag, req)
        self.spc.match_time_ns += work
        yield Delay(work)
        yield from self.lock.release()
        if traced:
            if m is not None:
                # Name the exact message this post delivered so the
                # analyzer can date unexpected-queue residence.
                trc.end(tid, {"outcome": "unexpected-hit",
                              "src": env.src, "seq": env.seq,
                              "dst": self.process.rank, "comm": self.comm.id})
            else:
                trc.end(tid, {"outcome": "posted"})
            self._trace_depths(trc)

    def probe_unexpected(self, src: int, tag: int, remove: bool = False):
        """Generator: look for an unexpected message matching (src, tag).

        ``remove=False`` is MPI_Iprobe (the message stays queued);
        ``remove=True`` is MPI_Improbe (the message is extracted and can
        only be received through the returned handle).  Returns the
        envelope or ``None``.
        """
        costs = self.costs
        yield from self.lock.acquire()
        if remove:
            m = self.unexpected.match(src, tag)
        else:
            m = self.unexpected.peek(src, tag)
        work = costs.match_base_ns // 4
        env = None
        if m is not None:
            env, scanned = m
            work += scanned * costs.match_search_per_elem_ns
        yield Delay(work)
        yield from self.lock.release()
        return env

    def cancel_posted(self, req) -> "object":
        """Generator: remove a pending posted receive (MPI_Cancel).

        Returns True if the receive was still queued and is now cancelled;
        False if it had already matched (cancellation failed, per MPI).
        """
        yield from self.lock.acquire()
        removed = self.posted.remove(req.src, req.tag, req)
        yield Delay(self.costs.match_base_ns // 4)
        yield from self.lock.release()
        return removed

    def handle_arrival(self, env):
        """Generator: process one incoming message; returns completions."""
        costs = self.costs
        trc = self.sched.tracer
        traced = trc.enabled
        if traced:
            tid = trc.thread_track(self.sched.current)
            trc.begin(tid, "match.arrival", "match",
                      {"src": env.src, "seq": env.seq,
                       "dst": self.process.rank, "comm": self.comm.id})
        outcome = "expected"
        yield from self.lock.acquire()
        work = self._migration()
        completions = 0
        if self.allow_overtaking:
            w, completions = self._match_one(env)
            work += w
            outcome = "overtaking"
        else:
            src = env.src
            expected = self.expected_seq.get(src, 0)
            work += costs.seq_validate_ns
            if env.seq < expected:
                # Stale sequence number: a duplicate delivery (the
                # reliable transport's retransmission raced its ack).
                # Buffering it would wedge the out-of-sequence drain, so
                # the existing per-(peer, comm) numbers double as the
                # receiver-side dedup: drop it on the floor.
                self.spc.duplicates_dropped += 1
                outcome = "duplicate"
            elif env.seq != expected:
                # Out of sequence: allocate and stash for later.
                buf = self.oos_buffer.setdefault(src, {})
                buf[env.seq] = env
                self.spc.out_of_sequence += 1
                self.spc.note_oos_depth(len(buf))
                work += costs.oos_insert_ns
                outcome = "oos-buffered"
            else:
                w, c = self._match_one(env)
                work += w
                completions += c
                expected += 1
                # Drain any buffered successors that are now in sequence.
                buf = self.oos_buffer.get(src)
                if buf:
                    while True:
                        work += costs.oos_lookup_ns
                        nxt = buf.pop(expected, None)
                        if nxt is None:
                            break
                        w, c = self._match_one(nxt)
                        work += w + costs.seq_validate_ns
                        completions += c
                        expected += 1
                self.expected_seq[src] = expected
        self.spc.match_time_ns += work
        # The per-process host pipeline bounds total message-handling rate.
        yield Delay(self.process.host_reserve() + work)
        yield from self.lock.release()
        if traced:
            if outcome == "expected" and completions == 0:
                outcome = "unexpected"
            trc.end(tid, {"outcome": outcome, "completions": completions,
                          "work_ns": work})
            self._trace_depths(trc)
        return completions


class CommState:
    """All per-(process, communicator) state: matching + send sequencing."""

    __slots__ = ("matching", "_send_seq", "_sched", "_atomic_ns", "coll_seq")

    def __init__(self, sched, process, comm):
        self.matching = MatchingEngine(sched, process, comm)
        self._send_seq: dict[int, AtomicCounter] = {}
        self._sched = sched
        self._atomic_ns = process.costs.atomic_rmw_ns
        # Per-(process, communicator) collective sequence number; stays in
        # agreement across members because collective calls are ordered.
        self.coll_seq = 0

    def send_seq(self, dst: int) -> AtomicCounter:
        """The shared per-(peer, communicator) sequence counter.

        Shared by *all* threads of the process sending to ``dst`` on this
        communicator -- the sharing that makes multithreaded sends race
        between sequence assignment and injection.
        """
        ctr = self._send_seq.get(dst)
        if ctr is None:
            ctr = AtomicCounter(self._sched, cost_ns=self._atomic_ns)
            self._send_seq[dst] = ctr
        return ctr
