"""MPI_T-style introspection: control and performance variables.

The paper reads its measurements through Open MPI's Software-based
Performance Counters, which are exported to tools via the MPI_T
performance-variable (pvar) interface; configuration knobs travel the
control-variable (cvar) route (the paper explicitly suggests ``MPI_T
cvars`` for sizing the CRI pool).  This module reproduces that tool
surface:

* :func:`list_cvars` / :func:`read_cvar` -- every knob of the run's
  :class:`~repro.core.config.ThreadingConfig` and
  :class:`~repro.core.config.CostModel`, read-only;
* :class:`PvarSession` -- enumerate, read, snapshot, diff and reset the
  SPC counters, per rank or aggregated.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.mpi.spc import SPC


@dataclass(frozen=True)
class VarInfo:
    """Metadata for one exposed variable."""

    name: str
    description: str
    kind: str          #: "cvar" or "pvar"
    readonly: bool = True


_PVAR_DERIVED = {
    "out_of_sequence_fraction":
        "fraction of received messages that arrived out of sequence",
    "match_time_ms": "total matching time in milliseconds",
}

#: Observability pvars backed by live lock/progress structures (the
#: counters repro.obs traces); read through
#: :meth:`~repro.mpi.process.MpiProcess.obs_counters`.
_PVAR_OBS = {
    "match_lock_wait_ns": "cumulative contended wait on matching locks",
    "match_lock_hold_ns": "cumulative hold time of matching locks",
    "cri_lock_wait_ns": "cumulative contended wait on CRI locks",
    "cri_lock_hold_ns": "cumulative hold time of CRI locks",
    "cri_lock_tryfails": "failed try-lock attempts on CRI locks",
    "progress_calls": "progress-engine invocations",
    "progress_denied": "progress calls denied by a held try-lock",
    "progress_lock_wait_ns": "cumulative wait on the serial progress lock",
}


def _pvar_names() -> list[str]:
    names = [f.name for f in dataclasses.fields(SPC)]
    return names + sorted(_PVAR_DERIVED) + sorted(_PVAR_OBS)


# ----------------------------------------------------------------------
# control variables
# ----------------------------------------------------------------------
def list_cvars(world) -> list[VarInfo]:
    """Enumerate the run's control variables (config + cost model)."""
    out = []
    for f in dataclasses.fields(world.config):
        out.append(VarInfo(f"threading.{f.name}",
                           f"ThreadingConfig.{f.name}", "cvar"))
    for f in dataclasses.fields(world.costs):
        out.append(VarInfo(f"costs.{f.name}", f"CostModel.{f.name}", "cvar"))
    return out


def read_cvar(world, name: str):
    """Read one control variable by its dotted name."""
    try:
        group, field = name.split(".", 1)
    except ValueError:
        raise KeyError(f"cvar names are '<group>.<field>', got {name!r}") from None
    source = {"threading": world.config, "costs": world.costs}.get(group)
    if source is None or not any(f.name == field
                                 for f in dataclasses.fields(source)):
        raise KeyError(f"unknown cvar {name!r}")
    return getattr(source, field)


# ----------------------------------------------------------------------
# performance variables
# ----------------------------------------------------------------------
class PvarSession:
    """A tool session over one world's software performance counters."""

    def __init__(self, world):
        self.world = world

    def list_pvars(self) -> list[VarInfo]:
        """Describe every exported performance variable (MPI_T pvar)."""
        out = []
        for f in dataclasses.fields(SPC):
            doc = (f.metadata.get("doc") if f.metadata else None) or f.name.replace("_", " ")
            out.append(VarInfo(f.name, doc, "pvar"))
        for name, doc in sorted(_PVAR_DERIVED.items()):
            out.append(VarInfo(name, doc, "pvar"))
        for name, doc in sorted(_PVAR_OBS.items()):
            out.append(VarInfo(name, doc, "pvar"))
        return out

    def _spc(self, rank: int | None) -> SPC:
        if rank is None:
            return self.world.spc_total()
        return self.world.processes[rank].spc

    def _obs(self, rank: int | None) -> dict:
        if rank is None:
            return self.world.obs_total()
        return self.world.processes[rank].obs_counters()

    def read(self, name: str, rank: int | None = None):
        """Read one pvar; ``rank=None`` aggregates over all processes."""
        if name in _PVAR_OBS:
            return self._obs(rank)[name]
        if name not in _pvar_names():
            raise KeyError(f"unknown pvar {name!r}")
        return getattr(self._spc(rank), name)

    def snapshot(self, rank: int | None = None) -> dict:
        """All pvars at once (a consistent read in virtual time)."""
        spc = self._spc(rank)
        out = {name: getattr(spc, name)
               for name in _pvar_names() if name not in _PVAR_OBS}
        out.update(self._obs(rank))
        return out

    @staticmethod
    def diff(before: dict, after: dict) -> dict:
        """Per-counter deltas between two snapshots (numeric fields)."""
        out = {}
        for key, new in after.items():
            old = before.get(key, 0)
            if isinstance(new, (int, float)):
                out[key] = new - old
        return out

    def reset(self, rank: int | None = None) -> None:
        """Zero the counters (per rank, or everywhere).

        Covers the SPCs *and* the observability-backed pvars: lock
        statistics and progress-engine call counts are zeroed in place,
        so diffs taken after a reset start from a clean epoch.
        """
        targets = (self.world.processes if rank is None
                   else [self.world.processes[rank]])
        for proc in targets:
            proc.spc.reset()
            for lock in proc.obs_locks():
                lock.reset_stats()
            proc.progress_engine.calls = 0
            proc.progress_engine.denied = 0
