"""Per-thread MPI API handle.

An :class:`MpiThreadEnv` is what a simulated application thread calls MPI
through -- the equivalent of "a thread inside an MPI_THREAD_MULTIPLE
process".  All potentially-blocking calls are generators and must be
driven with ``yield from``::

    def worker(env, peer, comm):
        req = yield from env.irecv(comm, src=peer, tag=7)
        yield from env.isend(comm, dst=peer, tag=7)
        yield from env.wait(req)

Two-sided, one-sided and collective operations are available; the
one-sided surface lives in :mod:`repro.mpi.rma.ops` and collectives in
:mod:`repro.mpi.collectives`, both re-exported here as methods.
"""

from __future__ import annotations

from repro.mpi import collectives as _coll
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, TAG_UB
from repro.mpi.errors import MpiError, TagError
from repro.mpi.request import PersistentRequest, RecvRequest, SendRequest, Status
from repro.mpi.rma import ops as _rma_ops
from repro.mpi.rma.window import Window
from repro.netsim.message import RTS, Envelope  # noqa: F401 (RTS: doc refs)
from repro.simthread.scheduler import Delay


class MpiThreadEnv:
    """One application thread's view of the MPI library."""

    __slots__ = ("process", "name")

    def __init__(self, process, name: str | None = None):
        self.process = process
        self.name = name or f"rank{process.rank}-thread"

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Rank of the owning process in MPI_COMM_WORLD."""
        return self.process.rank

    @property
    def world(self):
        """The MpiWorld this thread's process belongs to."""
        return self.process.world

    @property
    def sched(self):
        """The cooperative thread scheduler driving the simulation."""
        return self.process.world.sched

    @property
    def costs(self):
        """The CostModel charging virtual time for library operations."""
        return self.process.costs

    @property
    def comm_world(self):
        """The predefined world communicator."""
        return self.process.world.comm_world

    # ------------------------------------------------------------------
    # two-sided
    # ------------------------------------------------------------------
    def _check_user_tag(self, tag: int, recv: bool) -> None:
        if recv and tag == ANY_TAG:
            return
        if not 0 <= tag <= TAG_UB:
            raise TagError(f"tag {tag} outside [0, {TAG_UB}]"
                           + (" (or ANY_TAG)" if recv else ""))

    def isend(self, comm, dst: int, tag: int = 0, nbytes: int = 0, payload=None):
        """Generator: nonblocking eager send; returns a SendRequest."""
        self._check_user_tag(tag, recv=False)
        req = yield from self._isend(comm, dst, tag, nbytes, payload)
        return req

    def _isend(self, comm, dst: int, tag: int, nbytes: int, payload):
        """Internal send path (collectives use tags above TAG_UB)."""
        comm.check_member(dst, "destination")
        comm.check_member(self.rank, "source")
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        process = self.process
        costs = process.costs
        req = SendRequest(dst, tag, nbytes)
        state = process.comm_state(comm)
        trc = process.sched.tracer
        traced = trc.enabled
        if traced:
            tid = trc.thread_track(self.sched.current)
            # src/comm join the span to the receiver's match.arrival in
            # the offline analyzer (repro.obs.analyze): the message key
            # is (comm, src, dst, seq).
            trc.begin(tid, "send", "p2p", {"dst": dst, "tag": tag,
                                           "nbytes": nbytes,
                                           "src": self.rank, "comm": comm.id})
        # Sequence assignment happens *before* the instance lock -- the
        # race between assignment and injection is real (section II-C).
        seq = yield from state.send_seq(dst).fetch_add()
        req.seq = seq
        if nbytes > costs.eager_limit_bytes:
            # Rendezvous: only the RTS header travels now; the payload is
            # parked on the request until the receiver's CTS releases it.
            req.payload = payload
            envelope = Envelope(src=self.rank, dst=dst, comm_id=comm.id,
                                tag=tag, seq=seq, nbytes=nbytes, kind=RTS,
                                rndv_token=req)
            process.spc.rendezvous_sends += 1
        else:
            envelope = Envelope(src=self.rank, dst=dst, comm_id=comm.id,
                                tag=tag, seq=seq, nbytes=nbytes,
                                payload=payload, send_request=req)
        cri = yield from process.pool.get_instance()
        yield from cri.lock.acquire()
        yield Delay(process.host_reserve() + costs.send_path_ns)
        endpoint = process.endpoint_for(cri, dst)
        yield from cri.context.post_send(endpoint, envelope)
        cri.sends += 1
        yield from cri.lock.release()
        process.spc.messages_sent += 1
        if traced:
            trc.end(tid, {"seq": seq,
                          "proto": "rndv" if envelope.kind == RTS else "eager"})
        return req

    def irecv(self, comm, src: int = ANY_SOURCE, tag: int = ANY_TAG,
              nbytes: int = 0):
        """Generator: nonblocking receive; returns a RecvRequest.

        ``nbytes`` is the buffer capacity; a longer incoming message
        raises TruncationError at wait time (capacity 0 means
        "envelope-only", accepting any size, as the zero-byte benchmarks
        do).
        """
        self._check_user_tag(tag, recv=True)
        req = yield from self._irecv(comm, src, tag, nbytes)
        return req

    def _irecv(self, comm, src: int, tag: int, nbytes: int):
        """Internal receive path (no user-tag-range validation)."""
        comm.check_member(src, "source")
        comm.check_member(self.rank, "local rank")
        req = RecvRequest(src, tag, nbytes, comm_id=comm.id)
        state = self.process.comm_state(comm)
        yield from state.matching.post_recv(req)
        return req

    def send(self, comm, dst: int, tag: int = 0, nbytes: int = 0, payload=None):
        """Generator: blocking send (isend + wait)."""
        req = yield from self.isend(comm, dst, tag, nbytes, payload)
        yield from self.wait(req)

    def recv(self, comm, src: int = ANY_SOURCE, tag: int = ANY_TAG,
             nbytes: int = 0):
        """Generator: blocking receive; returns ``(payload, status)``."""
        req = yield from self.irecv(comm, src, tag, nbytes)
        yield from self.wait(req)
        return req.data, req.status

    def _recv(self, comm, src: int, tag: int, nbytes: int = 0):
        """Internal blocking receive (collectives' tag space)."""
        req = yield from self._irecv(comm, src, tag, nbytes)
        yield from self.wait(req)
        return req.data, req.status

    def sendrecv(self, comm, dst: int, sendtag: int, src: int = ANY_SOURCE,
                 recvtag: int = ANY_TAG, send_nbytes: int = 0,
                 send_payload=None, recv_nbytes: int = 0):
        """Generator: simultaneous send and receive (MPI_Sendrecv).

        Both operations are started before either is waited on, so the
        classic head-to-head exchange cannot deadlock.  Returns
        ``(payload, status)`` of the received message.
        """
        send_req = yield from self.isend(comm, dst, sendtag, send_nbytes,
                                         send_payload)
        recv_req = yield from self.irecv(comm, src, recvtag, recv_nbytes)
        yield from self.wait(recv_req)
        yield from self.wait(send_req)
        return recv_req.data, recv_req.status

    # ------------------------------------------------------------------
    # probe
    # ------------------------------------------------------------------
    def iprobe(self, comm, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: nonblocking probe; returns a Status or None.

        Drives one progress round first (like real MPI_Iprobe) so freshly
        arrived traffic is visible, then peeks the unexpected queue.
        """
        self._check_user_tag(tag, recv=True)
        comm.check_member(src, "source")
        yield from self.progress()
        engine = self.process.comm_state(comm).matching
        env = yield from engine.probe_unexpected(src, tag, remove=False)
        if env is None:
            return None
        return Status(source=env.src, tag=env.tag, nbytes=env.nbytes)

    def probe(self, comm, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: blocking probe; returns the matching Status."""
        costs = self.process.costs
        while True:
            status = yield from self.iprobe(comm, src, tag)
            if status is not None:
                return status
            yield Delay(costs.wait_backoff_ns)

    def improbe(self, comm, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: matched probe (MPI_Improbe).

        On a hit the message is *removed* from the matching engine -- no
        other receive can steal it -- and a handle is returned for
        :meth:`mrecv`.  Returns None on a miss.
        """
        self._check_user_tag(tag, recv=True)
        comm.check_member(src, "source")
        yield from self.progress()
        engine = self.process.comm_state(comm).matching
        env = yield from engine.probe_unexpected(src, tag, remove=True)
        return env  # opaque message handle (or None)

    def mrecv(self, message, nbytes: int = 0):
        """Generator: receive a message extracted by improbe.

        Returns ``(payload, status)``.  Works for both eager messages
        (delivery is immediate) and rendezvous RTS handles (the CTS/DATA
        exchange runs now).
        """
        if message is None:
            raise MpiError("mrecv needs a message handle from improbe")
        req = RecvRequest(message.src, message.tag, nbytes)
        engine = self.process.comm_state_by_id(message.comm_id).matching
        yield from engine.lock.acquire()
        extra, _ = engine._on_matched(req, message)
        yield Delay(extra)
        yield from engine.lock.release()
        yield from self.wait(req)
        return req.data, req.status

    # ------------------------------------------------------------------
    # persistent requests
    # ------------------------------------------------------------------
    def send_init(self, comm, dst: int, tag: int = 0, nbytes: int = 0,
                  payload=None) -> PersistentRequest:
        """Create an inactive persistent send (MPI_Send_init)."""
        self._check_user_tag(tag, recv=False)
        comm.check_member(dst, "destination")
        return PersistentRequest(PersistentRequest.SEND, dict(
            comm=comm, dst=dst, tag=tag, nbytes=nbytes, payload=payload))

    def recv_init(self, comm, src: int = ANY_SOURCE, tag: int = ANY_TAG,
                  nbytes: int = 0) -> PersistentRequest:
        """Create an inactive persistent receive (MPI_Recv_init)."""
        self._check_user_tag(tag, recv=True)
        comm.check_member(src, "source")
        return PersistentRequest(PersistentRequest.RECV, dict(
            comm=comm, src=src, tag=tag, nbytes=nbytes))

    def start(self, preq: PersistentRequest):
        """Generator: activate one round of a persistent request."""
        if preq.active:
            raise MpiError("persistent request is already active")
        a = preq.args
        if preq.kind == PersistentRequest.SEND:
            inner = yield from self._isend(a["comm"], a["dst"], a["tag"],
                                           a["nbytes"], a["payload"])
        else:
            inner = yield from self._irecv(a["comm"], a["src"], a["tag"],
                                           a["nbytes"])
        preq._activate(inner)
        return preq

    def startall(self, preqs):
        """Generator: activate a set of persistent requests."""
        for p in preqs:
            yield from self.start(p)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def wait(self, request):
        """Generator: block (spinning in the progress engine) until done."""
        process = self.process
        progress = process.progress_engine.progress
        backoff = process._wait_backoff_delay
        poll = process._wait_poll_delay
        while not request.completed:
            n = yield from progress()
            if request.completed:
                break
            yield backoff if n == 0 else poll
        if request.error is not None:
            raise request.error
        if isinstance(request, PersistentRequest):
            request._deactivate()
        return request

    def waitall(self, requests):
        """Generator: wait for every request in the sequence."""
        for req in requests:
            yield from self.wait(req)

    def waitany(self, requests):
        """Generator: block until at least one request completes; returns
        the index of a completed request (MPI_Waitany)."""
        requests = list(requests)
        if not requests:
            raise ValueError("waitany needs at least one request")
        costs = self.process.costs
        while True:
            for i, req in enumerate(requests):
                if req.completed:
                    if req.error is not None:
                        raise req.error
                    return i
            n = yield from self.progress()
            if n == 0:
                yield Delay(costs.wait_backoff_ns)

    def waitsome(self, requests):
        """Generator: block until >= 1 completes; returns all completed
        indices (MPI_Waitsome)."""
        first = yield from self.waitany(requests)
        done = [i for i, req in enumerate(requests) if req.completed]
        assert first in done
        return done

    def test(self, request) -> bool:
        """Nonblocking completion check (no progress)."""
        return request.completed

    def testall(self, requests):
        """Generator: one progress round, then all-complete check."""
        yield from self.progress()
        return all(req.completed for req in requests)

    def testany(self, requests):
        """Generator: one progress round; returns a completed index or None."""
        yield from self.progress()
        for i, req in enumerate(requests):
            if req.completed:
                return i
        return None

    def cancel(self, request):
        """Generator: cancel a pending receive (MPI_Cancel).

        Returns True if the receive was still unmatched and is now
        cancelled; False if it had already matched (the operation will
        complete normally).  Cancelling sends is not supported, matching
        the direction MPI-4 took in deprecating it.
        """
        if not isinstance(request, RecvRequest):
            raise MpiError("only receive requests can be cancelled")
        if request.completed:
            return False
        if request.comm_id is None:
            raise MpiError("request was not posted through irecv")
        engine = self.process.comm_state_by_id(request.comm_id).matching
        removed = yield from engine.cancel_posted(request)
        if removed:
            request._cancel(self.sched.now)
            return True
        return False

    def progress(self):
        """Generator: one call into the progress engine; returns the
        number of completions it handled."""
        n = yield from self.process.progress_engine.progress()
        return n

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self, comm, algorithm: str = _coll.LINEAR):
        """Generator: block until every member of ``comm`` arrives."""
        yield from _coll.barrier(self, comm, algorithm)

    def bcast(self, comm, root: int, payload=None, nbytes: int = 0,
              algorithm: str = _coll.LINEAR):
        """Generator: broadcast ``payload`` from ``root``; returns it."""
        value = yield from _coll.bcast(self, comm, root, payload, nbytes,
                                       algorithm)
        return value

    def reduce(self, comm, root: int, value, op=_coll.SUM, nbytes: int = 0,
               algorithm: str = _coll.LINEAR):
        """Generator: reduce to ``root``; returns the result there, None elsewhere."""
        result = yield from _coll.reduce(self, comm, root, value, op, nbytes,
                                         algorithm)
        return result

    def allreduce(self, comm, value, op=_coll.SUM, nbytes: int = 0,
                  algorithm: str = _coll.LINEAR):
        """Generator: reduce across ``comm``; every member gets the result."""
        result = yield from _coll.allreduce(self, comm, value, op, nbytes,
                                            algorithm)
        return result

    def gather(self, comm, root: int, value, nbytes: int = 0):
        """Generator: gather one value per rank to ``root`` (list there)."""
        result = yield from _coll.gather(self, comm, root, value, nbytes)
        return result

    def scatter(self, comm, root: int, values=None, nbytes: int = 0):
        """Generator: ``root`` scatters one value to each rank; returns ours."""
        result = yield from _coll.scatter(self, comm, root, values, nbytes)
        return result

    def allgather(self, comm, value, nbytes: int = 0):
        """Generator: gather one value per rank; every member gets the list."""
        result = yield from _coll.allgather(self, comm, value, nbytes)
        return result

    def alltoall(self, comm, values, nbytes: int = 0):
        """Generator: personalized exchange; returns the values sent to us."""
        result = yield from _coll.alltoall(self, comm, values, nbytes)
        return result

    # ------------------------------------------------------------------
    # one-sided
    # ------------------------------------------------------------------
    def win_allocate(self, comm, size_bytes: int) -> Window:
        """Collective-in-spirit window allocation (callable from any one
        thread; every member's buffer is created)."""
        return Window(self.world, comm, size_bytes)

    def win_lock(self, win, target: int, exclusive: bool = False):
        """Generator: open a passive-target epoch on ``target``'s window."""
        yield from _rma_ops.win_lock(self, win, target, exclusive)

    def win_lock_all(self, win):
        """Generator: open shared passive-target epochs on every member."""
        yield from _rma_ops.win_lock_all(self, win)

    def win_unlock(self, win, target: int):
        """Generator: flush outstanding ops and close the epoch on ``target``."""
        yield from _rma_ops.win_unlock(self, win, target)

    def win_unlock_all(self, win):
        """Generator: flush and close the epochs opened by win_lock_all."""
        yield from _rma_ops.win_unlock_all(self, win)

    def put(self, win, target: int, nbytes: int, target_offset: int = 0, data=None):
        """Generator: one-sided write into ``target``'s window; returns the op."""
        op = yield from _rma_ops.put(self, win, target, nbytes, target_offset, data)
        return op

    def get(self, win, target: int, nbytes: int, target_offset: int = 0):
        """Generator: one-sided read from ``target``'s window; returns the op."""
        op = yield from _rma_ops.get(self, win, target, nbytes, target_offset)
        return op

    def accumulate(self, win, target: int, values, target_offset: int = 0,
                   op=_rma_ops.SUM_OP):
        """Generator: element-wise atomic update of ``target``'s window."""
        handle = yield from _rma_ops.accumulate(self, win, target, values,
                                                target_offset, op)
        return handle

    def flush(self, win, target: int | None = None):
        """Generator: wait for outstanding RMA ops to ``target`` (or all)."""
        yield from _rma_ops.flush(self, win, target)

    def flush_all(self, win):
        """Generator: wait for outstanding RMA ops to every target."""
        yield from _rma_ops.flush(self, win, None)

    def fence(self, win):
        """Generator: active-target synchronization across the window group."""
        yield from _rma_ops.fence(self, win)

    def win_sync(self, win):
        """Generator: synchronize the local window copy (memory barrier)."""
        yield from _rma_ops.win_sync(self, win)
