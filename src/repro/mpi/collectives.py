"""Collective operations built on the two-sided point-to-point layer.

Two algorithm families:

* **linear** (root-centric) -- the default: simple, and for reductions it
  guarantees combination in ascending rank order (what non-commutative
  operators need);
* **binomial / dissemination** -- logarithmic trees for bcast/reduce and
  the dissemination barrier; O(log P) rounds instead of O(P) messages at
  the root.  Binomial reduce combines contiguous virtual-rank ranges, so
  it requires an associative operator (commutative not needed when the
  root is ``ranks[0]``).

Tags come from the internal tag space above ``TAG_UB`` and advance with a
per-(process, communicator) collective sequence number; because MPI
requires all members to invoke collectives on a communicator in the same
order (and forbids concurrent collectives on one communicator from
multiple threads), the per-process counters stay in agreement without any
extra communication.
"""

from __future__ import annotations

from repro.mpi.constants import INTERNAL_TAG_BASE

# Reduction operators: associative fold functions of two values.
SUM = "sum"
MAX = "max"
MIN = "min"
PROD = "prod"

_OPS = {
    SUM: lambda a, b: a + b,
    MAX: lambda a, b: a if a >= b else b,
    MIN: lambda a, b: a if a <= b else b,
    PROD: lambda a, b: a * b,
}

# Distinct sub-spaces per collective so overlapping phases cannot match.
_TAGS_PER_COLLECTIVE = 4


def _next_tag(env, comm) -> int:
    state = env.process.comm_state(comm)
    seq = getattr(state, "coll_seq", 0)
    state.coll_seq = seq + 1
    return INTERNAL_TAG_BASE + (seq % (2 ** 16)) * _TAGS_PER_COLLECTIVE


def _op_fn(op):
    if callable(op):
        return op
    try:
        return _OPS[op]
    except KeyError:
        raise ValueError(f"unknown reduction op {op!r}; "
                         f"use one of {sorted(_OPS)} or a callable") from None


LINEAR = "linear"
BINOMIAL = "binomial"
DISSEMINATION = "dissemination"


def _check_algorithm(algorithm, allowed):
    if algorithm not in allowed:
        raise ValueError(f"algorithm must be one of {allowed}, got {algorithm!r}")


def barrier(env, comm, algorithm: str = LINEAR):
    """Generator: barrier; 'linear' (gather+release) or 'dissemination'."""
    _check_algorithm(algorithm, (LINEAR, DISSEMINATION))
    if algorithm == DISSEMINATION:
        yield from _barrier_dissemination(env, comm)
        return
    tag = _next_tag(env, comm)
    root = comm.ranks[0]
    me = env.rank
    if me == root:
        for r in comm.ranks:
            if r != root:
                yield from env._recv(comm, src=r, tag=tag)
        reqs = []
        for r in comm.ranks:
            if r != root:
                req = yield from env._isend(comm, r, tag + 1, 0, None)
                reqs.append(req)
        yield from env.waitall(reqs)
    else:
        req = yield from env._isend(comm, root, tag, 0, None)
        yield from env.wait(req)
        yield from env._recv(comm, src=root, tag=tag + 1)


def _barrier_dissemination(env, comm):
    """Generator: dissemination barrier: ceil(log2 P) rounds, each rank
    signals (rank + 2^k) and awaits (rank - 2^k), all mod P."""
    tag = _next_tag(env, comm)
    size = comm.size
    me_local = comm.local_rank(env.rank)
    distance = 1
    while distance < size:
        # Distinct rounds use distinct partners, so one tag suffices:
        # (source, tag) disambiguates every signal.
        to = comm.world_rank((me_local + distance) % size)
        frm = comm.world_rank((me_local - distance) % size)
        req = yield from env._isend(comm, to, tag, 0, None)
        yield from env._recv(comm, src=frm, tag=tag)
        yield from env.wait(req)
        distance <<= 1


def bcast(env, comm, root: int, payload=None, nbytes: int = 0,
          algorithm: str = LINEAR):
    """Generator: broadcast ``payload`` from root; returns the payload."""
    comm.check_member(root, "root")
    _check_algorithm(algorithm, (LINEAR, BINOMIAL))
    if algorithm == BINOMIAL:
        value = yield from _bcast_binomial(env, comm, root, payload, nbytes)
        return value
    tag = _next_tag(env, comm)
    if env.rank == root:
        reqs = []
        for r in comm.ranks:
            if r != root:
                req = yield from env._isend(comm, r, tag, nbytes, payload)
                reqs.append(req)
        yield from env.waitall(reqs)
        return payload
    data, _ = yield from env._recv(comm, src=root, tag=tag)
    return data


def _bcast_binomial(env, comm, root: int, payload, nbytes: int):
    """Generator: binomial-tree broadcast (recursive doubling).

    Round k: virtual ranks [0, 2^k) send to [2^k, 2^(k+1)).  Every
    non-root rank receives exactly once.
    """
    tag = _next_tag(env, comm)
    size = comm.size
    root_local = comm.local_rank(root)
    vrank = (comm.local_rank(env.rank) - root_local) % size

    def world_of(v):
        return comm.world_rank((v + root_local) % size)

    value = payload
    mask = 1
    while mask < size:
        if vrank < mask:
            partner = vrank + mask
            if partner < size:
                req = yield from env._isend(comm, world_of(partner), tag,
                                            nbytes, value)
                yield from env.wait(req)
        elif vrank < 2 * mask:
            value, _ = yield from env._recv(comm, src=world_of(vrank - mask),
                                            tag=tag)
        mask <<= 1
    return value


def _reduce_binomial(env, comm, root: int, value, fn, nbytes: int):
    """Generator: binomial-tree reduction.

    Each accumulator covers a contiguous virtual-rank range, so an
    associative operator is combined in virtual-rank order.
    """
    tag = _next_tag(env, comm)
    size = comm.size
    root_local = comm.local_rank(root)
    vrank = (comm.local_rank(env.rank) - root_local) % size

    def world_of(v):
        return comm.world_rank((v + root_local) % size)

    acc = value
    mask = 1
    while mask < size:
        if vrank & mask:
            req = yield from env._isend(comm, world_of(vrank - mask), tag,
                                        nbytes, acc)
            yield from env.wait(req)
            return None
        partner = vrank + mask
        if partner < size:
            other, _ = yield from env._recv(comm, src=world_of(partner), tag=tag)
            acc = fn(acc, other)
        mask <<= 1
    return acc if vrank == 0 else None


def reduce(env, comm, root: int, value, op=SUM, nbytes: int = 0,
           algorithm: str = LINEAR):
    """Generator: reduce to root; returns the result at root, None elsewhere.

    The linear algorithm combines in ascending rank order (safe for
    non-commutative callables); the binomial algorithm combines
    contiguous virtual-rank ranges and needs an associative operator.
    """
    comm.check_member(root, "root")
    _check_algorithm(algorithm, (LINEAR, BINOMIAL))
    fn = _op_fn(op)
    if algorithm == BINOMIAL:
        result = yield from _reduce_binomial(env, comm, root, value, fn, nbytes)
        return result
    tag = _next_tag(env, comm)
    if env.rank == root:
        contributions = {root: value}
        for r in comm.ranks:
            if r != root:
                data, status = yield from env._recv(comm, src=r, tag=tag)
                contributions[status.source] = data
        acc = None
        for r in sorted(comm.ranks):
            acc = contributions[r] if acc is None else fn(acc, contributions[r])
        return acc
    req = yield from env._isend(comm, root, tag, nbytes, value)
    yield from env.wait(req)
    return None


def allreduce(env, comm, value, op=SUM, nbytes: int = 0,
              algorithm: str = LINEAR):
    """Generator: reduce to ranks[0] then broadcast the result."""
    root = comm.ranks[0]
    result = yield from reduce(env, comm, root, value, op, nbytes, algorithm)
    result = yield from bcast(env, comm, root, result, nbytes, algorithm)
    return result


def scatter(env, comm, root: int, values=None, nbytes: int = 0):
    """Generator: root distributes ``values[i]`` to communicator rank i.

    Returns this rank's element.
    """
    comm.check_member(root, "root")
    tag = _next_tag(env, comm)
    if env.rank == root:
        if values is None or len(values) != comm.size:
            raise ValueError(
                f"scatter root needs exactly {comm.size} values, "
                f"got {None if values is None else len(values)}")
        mine = None
        reqs = []
        for i, r in enumerate(comm.ranks):
            if r == root:
                mine = values[i]
            else:
                req = yield from env._isend(comm, r, tag, nbytes, values[i])
                reqs.append(req)
        yield from env.waitall(reqs)
        return mine
    data, _ = yield from env._recv(comm, src=root, tag=tag)
    return data


def allgather(env, comm, value, nbytes: int = 0):
    """Generator: every rank ends with [value_0, ..., value_{P-1}]
    ordered by communicator rank (gather to ranks[0], then broadcast)."""
    root = comm.ranks[0]
    collected = yield from gather(env, comm, root, value, nbytes)
    collected = yield from bcast(env, comm, root, collected, nbytes * comm.size)
    return collected


def alltoall(env, comm, values, nbytes: int = 0):
    """Generator: personalized all-to-all.

    ``values[i]`` goes to communicator rank i; returns the list received
    from every rank, ordered by communicator rank.  All sends and
    receives are posted before any wait, so the exchange cannot deadlock.
    """
    if len(values) != comm.size:
        raise ValueError(f"alltoall needs exactly {comm.size} values, "
                         f"got {len(values)}")
    tag = _next_tag(env, comm)
    me_local = comm.local_rank(env.rank)
    send_reqs = []
    recv_reqs = {}
    for i, r in enumerate(comm.ranks):
        if r == env.rank:
            continue
        req = yield from env._isend(comm, r, tag, nbytes, values[i])
        send_reqs.append(req)
        recv_reqs[r] = yield from env._irecv(comm, r, tag, 0)
    yield from env.waitall(send_reqs)
    yield from env.waitall(recv_reqs.values())
    out = []
    for i, r in enumerate(comm.ranks):
        out.append(values[me_local] if r == env.rank else recv_reqs[r].data)
    return out


def gather(env, comm, root: int, value, nbytes: int = 0):
    """Generator: gather values to root, ordered by communicator rank.

    Returns the list at root, None elsewhere.
    """
    comm.check_member(root, "root")
    tag = _next_tag(env, comm)
    if env.rank == root:
        collected = {root: value}
        for r in comm.ranks:
            if r != root:
                data, status = yield from env._recv(comm, src=r, tag=tag)
                collected[status.source] = data
        return [collected[r] for r in comm.ranks]
    req = yield from env._isend(comm, root, tag, nbytes, value)
    yield from env.wait(req)
    return None
